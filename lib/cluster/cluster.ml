open Stallhide_cpu
open Stallhide_mem
open Stallhide_runtime
open Stallhide_sched
open Stallhide_smp
open Stallhide_net
module Faults = Stallhide_faults.Faults
module Json = Stallhide_util.Json

(* --- event heap: (time, seq) min-heap; seq breaks ties FIFO --- *)

module Heap = struct
  type 'a t = { mutable a : (int * int * 'a) array; mutable len : int; mutable seq : int }

  let create () = { a = [||]; len = 0; seq = 0 }

  let less (t1, s1, _) (t2, s2, _) = t1 < t2 || (t1 = t2 && s1 < s2)

  let push h time v =
    let e = (time, h.seq, v) in
    h.seq <- h.seq + 1;
    if h.len = Array.length h.a then begin
      let cap = max 64 (2 * h.len) in
      let a' = Array.make cap e in
      Array.blit h.a 0 a' 0 h.len;
      h.a <- a'
    end;
    h.a.(h.len) <- e;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && less h.a.(!i) h.a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let peek_time h = if h.len = 0 then None else (fun (t, _, _) -> Some t) h.a.(0)

  let pop h =
    if h.len = 0 then invalid_arg "Heap.pop: empty";
    let (t, _, v) = h.a.(0) in
    h.len <- h.len - 1;
    h.a.(0) <- h.a.(h.len);
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.len && less h.a.(l) h.a.(!smallest) then smallest := l;
      if r < h.len && less h.a.(r) h.a.(!smallest) then smallest := r;
      if !smallest = !i then continue_ := false
      else begin
        let tmp = h.a.(!smallest) in
        h.a.(!smallest) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := !smallest
      end
    done;
    (t, v)
end

(* --- requests --- *)

type spec = { rid : int; key : int; send : int }

type attempt_kind = First | Retry | Hedge

type attempt = {
  a_ix : int;
  a_machine : int;
  a_kind : attempt_kind;
  a_sent : int;
  mutable a_ctx : Context.t option;
  mutable a_done : bool;
  mutable a_timed : bool;
}

type outcome = Pending | Acked | Expired | Shed | Unanswered

let outcome_name = function
  | Pending -> "pending"
  | Acked -> "acked"
  | Expired -> "expired"
  | Shed -> "shed"
  | Unanswered -> "unanswered"

type rq = {
  spec : spec;
  mutable attempts : attempt list;  (* in dispatch (a_ix) order *)
  mutable tried : int list;
  mutable retries : int;
  mutable hedges : int;
  mutable done_at : int;
  mutable winner : int;
  mutable winner_attempt : int;
  mutable winner_ctx : Context.t option;
  mutable outcome : outcome;
}

(* --- nodes --- *)

type node_impl = {
  config : Machine.config;
  mem : Address_space.t;
  scavengers : Context.t list array;
  make_ctx : rid:int -> attempt:int -> Context.t;
}

type node = {
  nid : int;
  mutable impl : node_impl;
  mutable live : Machine.Live.t option;
  nic : Nic.t;
  mutable crashed : bool;
  mutable restarts : int;
  mutable snapshots : Machine.result list;  (* crashed incarnations, newest first *)
  inflight : (int, int * int) Hashtbl.t;  (* ctx id -> (rid, attempt ix) *)
}

type node_view = {
  id : int;
  crashed : bool;
  restarts : int;
  completed : int;  (* across incarnations *)
  cycles : int;  (* max incarnation clock *)
  nic_rx : int;
  nic_fast : int;
  nic_overflow : int;
  nic_tx : int;
  result : Machine.result option;  (* final incarnation, None while crashed *)
}

type config = {
  machines : int;
  policy : Dispatch.policy;
  lb : Lb.policy;
  net : Netconfig.t;
  defense : Defense.t option;
  slo_deadline : int;
  seed : int;
  faults : Faults.fault list;
  horizon : int;
}

type result = {
  cycles : int;
  offered : int;
  acked : int;
  expired : int;
  shed : int;
  unanswered : int;
  lost_acked : int;
  split : Latency.split;
  requests : rq array;
  nodes : node_view array;
  brownout_engaged : int;
  counters : (string * int) list;
}

type ev =
  | Send of int
  | Deliver of { rid : int; aix : int; m : int }
  | Respond of { rid : int; aix : int; m : int }
  | Timeout of { rid : int; aix : int }
  | RetryAt of int
  | HedgeFire of int
  | ExpireAt of int
  | Probe of int
  | ProbeReply of { m : int; ok : bool }
  | CrashAt of { m : int; down : int }
  | RecoverAt of int

let run c ~node:make_impl ~requests =
  if c.machines <= 0 then invalid_arg "Cluster.run: machines must be positive";
  if c.slo_deadline <= 0 then invalid_arg "Cluster.run: slo_deadline must be positive";
  List.iter
    (fun f ->
      if not (Faults.is_net f) then
        invalid_arg
          (Printf.sprintf "Cluster.run: %s is a single-machine fault; use the faults harness"
             (Faults.name f)))
    c.faults;
  (match c.defense with Some d -> Defense.validate d | None -> ());
  let reqs = Array.of_list requests in
  Array.iteri
    (fun i (s : spec) ->
      if i > 0 && s.send < reqs.(i - 1).send then
        invalid_arg "Cluster.run: requests must be sorted by send time")
    reqs;
  let plan = Faults.of_specs ~seed:c.seed [] in
  let sub salt = Faults.sub_seed plan ~salt in
  (* net-fault knobs *)
  let loss, reorder =
    List.fold_left
      (fun acc f -> match f with Faults.Netloss { p; reorder } -> (p, reorder) | _ -> acc)
      (0.0, 0.0) c.faults
  in
  let rx_depth =
    List.fold_left
      (fun acc f -> match f with Faults.Nicdrop { depth } -> min acc depth | _ -> acc)
      c.net.Netconfig.rx_depth c.faults
  in
  let slow_mult m =
    List.fold_left
      (fun acc f ->
        match f with Faults.Slownode { machine; mult } when machine = m -> max acc mult | _ -> acc)
      1 c.faults
  in
  let last_send = Array.fold_left (fun acc (s : spec) -> max acc s.send) 0 reqs in
  let link = Link.create ~loss ~reorder ~seed:(sub 11) () in
  let lb = Lb.create c.lb ~machines:c.machines ~seed:(sub 12) in
  let heap = Heap.create () in
  let rq_of = Hashtbl.create (Array.length reqs) in
  let rqs =
    Array.map
      (fun (s : spec) ->
        if Hashtbl.mem rq_of s.rid then invalid_arg "Cluster.run: duplicate rid";
        let r =
          {
            spec = s;
            attempts = [];
            tried = [];
            retries = 0;
            hedges = 0;
            done_at = -1;
            winner = -1;
            winner_attempt = -1;
            winner_ctx = None;
            outcome = Pending;
          }
        in
        Hashtbl.replace rq_of s.rid r;
        r)
      reqs
  in
  (* counters *)
  let acked = ref 0 and expired = ref 0 and shed = ref 0 in
  let retries = ref 0 and hedges = ref 0 and hedge_wins = ref 0 and hedge_losses = ref 0 in
  let hedges_suppressed = ref 0 and late_responses = ref 0 in
  let req_lost = ref 0 and resp_lost = ref 0 and dead_deliveries = ref 0 in
  let crashes = ref 0 and recoveries = ref 0 and probes = ref 0 in
  let brownout_engaged = ref 0 and brownout_shed = ref 0 in
  let lost_acked = ref 0 in
  let unresolved = ref (Array.length rqs) in
  let brownout = ref false in
  let est_sojourn = ref 0 in
  let retry_tokens =
    ref
      (match c.defense with
      | Some d -> Defense.retry_budget d ~offered:(Array.length reqs)
      | None -> 0)
  in
  (* nodes *)
  let wrap_slow m (cfg : Machine.config) =
    let mult = slow_mult m in
    if mult = 1 then cfg
    else
      {
        cfg with
        Machine.prepare_core =
          (fun core hier ->
            cfg.Machine.prepare_core core hier;
            Hierarchy.inject_spike hier ~from_cycle:0 ~until_cycle:max_int ~l3_mult:mult
              ~dram_mult:mult);
      }
  in
  let nodes =
    Array.init c.machines (fun m ->
        let impl = make_impl ~machine:m ~restart:0 in
        {
          nid = m;
          impl = { impl with config = wrap_slow m impl.config };
          live = None;
          nic = Nic.create ~depth:rx_depth;
          crashed = false;
          restarts = 0;
          snapshots = [];
          inflight = Hashtbl.create 64;
        })
  in
  let resolve (r : rq) o =
    r.outcome <- o;
    decr unresolved
  in
  let create_live (nd : node) =
    let live =
      Machine.Live.create ~config:nd.impl.config ~policy:c.policy ~mem:nd.impl.mem
        ~scavengers:nd.impl.scavengers ()
    in
    if !brownout then Machine.Live.set_scavengers_enabled live false;
    Machine.Live.set_on_complete live (fun (req : Machine.request) ~core:_ ~now ->
        match Hashtbl.find_opt nd.inflight req.Machine.ctx.Context.id with
        | None -> ()
        | Some (rid, aix) ->
            Hashtbl.remove nd.inflight req.Machine.ctx.Context.id;
            Nic.sent nd.nic;
            let cost =
              Netconfig.tx_cost c.net nd.impl.config.Machine.memcfg
                ~bytes:c.net.Netconfig.resp_bytes
            in
            (match Link.transit link ~now ~cost with
            | None -> incr resp_lost
            | Some at -> Heap.push heap at (Respond { rid; aix; m = nd.nid })));
    live
  in
  Array.iter (fun nd -> nd.live <- Some (create_live nd)) nodes;
  let backlog_of m =
    match nodes.(m).live with Some l when not nodes.(m).crashed -> Machine.Live.backlog l | _ -> 0
  in
  let set_brownout on =
    if on <> !brownout then begin
      brownout := on;
      if on then incr brownout_engaged;
      Array.iter
        (fun nd ->
          match nd.live with
          | Some l -> Machine.Live.set_scavengers_enabled l (not on)
          | None -> ())
        nodes
    end
  in
  let eval_brownout () =
    match c.defense with
    | Some d when d.Defense.brownout_depth > 0 ->
        let sum = ref 0 and n = ref 0 in
        Array.iter
          (fun (nd : node) ->
            if not nd.crashed then begin
              sum := !sum + backlog_of nd.nid;
              incr n
            end)
          nodes;
        let mean = if !n = 0 then 0 else !sum / !n in
        if !brownout then begin
          if mean * 2 <= d.Defense.brownout_depth then set_brownout false
        end
        else if mean > d.Defense.brownout_depth then set_brownout true
    | _ -> ()
  in
  let attempt_of (r : rq) aix = List.nth r.attempts aix in
  (* dispatch one attempt; false when no eligible machine *)
  let dispatch (r : rq) kind ~now =
    match Lb.choose lb ~key:r.spec.key ~backlog:backlog_of ~exclude:r.tried with
    | None -> false
    | Some m ->
        let deadline_shed =
          (* brownout: shed a request that cannot meet its deadline
             instead of queueing it to certain death *)
          !brownout && kind <> Hedge
          && now + !est_sojourn > r.spec.send + c.slo_deadline
        in
        if deadline_shed then begin
          resolve r Shed;
          incr shed;
          incr brownout_shed;
          true
        end
        else begin
          let aix = List.length r.attempts in
          let att =
            { a_ix = aix; a_machine = m; a_kind = kind; a_sent = now; a_ctx = None;
              a_done = false; a_timed = false }
          in
          r.attempts <- r.attempts @ [ att ];
          r.tried <- m :: r.tried;
          let cost =
            Netconfig.rx_cost c.net nodes.(m).impl.config.Machine.memcfg
              ~bytes:c.net.Netconfig.req_bytes
          in
          (match Link.transit link ~now ~cost with
          | None -> incr req_lost
          | Some at -> Heap.push heap at (Deliver { rid = r.spec.rid; aix; m }));
          (match c.defense with
          | Some d -> Heap.push heap (now + d.Defense.timeout) (Timeout { rid = r.spec.rid; aix })
          | None -> ());
          true
        end
  in
  (* arm the trace *)
  Array.iter (fun (s : spec) -> Heap.push heap s.send (Send s.rid)) reqs;
  List.iter
    (fun f ->
      match f with
      | Faults.Crash { machine; at; percent; down } ->
          if machine >= c.machines then
            invalid_arg
              (Printf.sprintf "Cluster.run: crash machine %d out of range (machines=%d)" machine
                 c.machines);
          let at_cycles = if percent then at * last_send / 100 else at in
          Heap.push heap at_cycles (CrashAt { m = machine; down })
      | _ -> ())
    c.faults;
  (match c.defense with
  | Some d ->
      Array.iteri
        (fun m _ -> Heap.push heap (d.Defense.probe_interval + m) (Probe m))
        nodes
  | None -> ());
  let probe_rtt =
    Netconfig.rtt c.net nodes.(0).impl.config.Machine.memcfg
  in
  (* --- event handlers --- *)
  let handle now = function
    | Send rid ->
        let r = Hashtbl.find rq_of rid in
        (match c.defense with
        | Some _ -> Heap.push heap (r.spec.send + c.slo_deadline + 1) (ExpireAt rid)
        | None -> ());
        ignore (dispatch r First ~now);
        (match (c.defense, r.outcome) with
        | Some d, Pending when d.Defense.hedge_after > 0 && d.Defense.hedge_max > 0 ->
            Heap.push heap (now + d.Defense.hedge_after) (HedgeFire rid)
        | _ -> ())
    | Deliver { rid; aix; m } -> (
        let r = Hashtbl.find rq_of rid in
        let att = attempt_of r aix in
        let nd = nodes.(m) in
        match nd.live with
        | None -> incr dead_deliveries
        | Some _ when nd.crashed -> incr dead_deliveries
        | Some live ->
            let lean = Netconfig.lean c.net ~bytes:c.net.Netconfig.req_bytes in
            if Nic.admit nd.nic ~backlog:(Machine.Live.backlog live) ~lean then begin
              let ctx = nd.impl.make_ctx ~rid ~attempt:aix in
              att.a_ctx <- Some ctx;
              Hashtbl.replace nd.inflight ctx.Context.id (rid, aix);
              let home =
                Dispatch.home ~shards:nd.impl.config.Machine.cores r.spec.key
              in
              Machine.Live.submit live
                (Machine.request ~rid ~key:r.spec.key ~home ~arrival:now ctx);
              eval_brownout ()
            end)
    | Respond { rid; aix; m } -> (
        let r = Hashtbl.find rq_of rid in
        let att = attempt_of r aix in
        att.a_done <- true;
        Lb.clear_strikes lb m;
        match r.outcome with
        | Pending ->
            r.done_at <- now;
            r.winner <- m;
            r.winner_attempt <- aix;
            r.winner_ctx <- att.a_ctx;
            resolve r Acked;
            incr acked;
            est_sojourn := !est_sojourn + (((now - r.spec.send) - !est_sojourn) / 8);
            if att.a_kind = Hedge then incr hedge_wins;
            eval_brownout ()
        | Acked -> incr hedge_losses
        | Expired | Shed | Unanswered -> incr late_responses)
    | Timeout { rid; aix } -> (
        let r = Hashtbl.find rq_of rid in
        let att = attempt_of r aix in
        if r.outcome = Pending && (not att.a_done) && not att.a_timed then begin
          att.a_timed <- true;
          match c.defense with
          | None -> ()
          | Some d ->
              ignore (Lb.strike lb att.a_machine ~threshold:d.Defense.strike_threshold);
              if
                r.retries < d.Defense.max_retries
                && !retry_tokens > 0
                && now < r.spec.send + c.slo_deadline
              then begin
                decr retry_tokens;
                r.retries <- r.retries + 1;
                incr retries;
                let delay =
                  Defense.backoff_delay d ~seed:(sub 13) ~rid ~attempt:r.retries
                in
                Heap.push heap (now + delay) (RetryAt rid)
              end
        end)
    | RetryAt rid ->
        let r = Hashtbl.find rq_of rid in
        if r.outcome = Pending && now <= r.spec.send + c.slo_deadline then
          ignore (dispatch r Retry ~now)
    | HedgeFire rid -> (
        let r = Hashtbl.find rq_of rid in
        match c.defense with
        | Some d when r.outcome = Pending && now <= r.spec.send + c.slo_deadline ->
            if !brownout then incr hedges_suppressed
            else if r.hedges < d.Defense.hedge_max then begin
              if dispatch r Hedge ~now then begin
                r.hedges <- r.hedges + 1;
                incr hedges
              end;
              if r.hedges < d.Defense.hedge_max then
                Heap.push heap (now + d.Defense.hedge_after) (HedgeFire rid)
            end
        | _ -> ())
    | ExpireAt rid ->
        let r = Hashtbl.find rq_of rid in
        if r.outcome = Pending then begin
          resolve r Expired;
          incr expired
        end
    | Probe m ->
        if !unresolved > 0 then begin
          incr probes;
          let ok = not nodes.(m).crashed in
          Heap.push heap (now + probe_rtt) (ProbeReply { m; ok });
          (match c.defense with
          | Some d -> Heap.push heap (now + d.Defense.probe_interval) (Probe m)
          | None -> ())
        end
    | ProbeReply { m; ok } -> (
        match c.defense with
        | None -> ()
        | Some d ->
            if ok then ignore (Lb.readmit lb m)
            else ignore (Lb.strike lb m ~threshold:d.Defense.strike_threshold))
    | CrashAt { m; down } ->
        let nd = nodes.(m) in
        if not nd.crashed then begin
          incr crashes;
          nd.crashed <- true;
          (match nd.live with
          | Some l -> nd.snapshots <- Machine.Live.finish l :: nd.snapshots
          | None -> ());
          nd.live <- None;
          Hashtbl.reset nd.inflight;
          if down > 0 then Heap.push heap (now + down) (RecoverAt m)
        end
    | RecoverAt m ->
        let nd = nodes.(m) in
        if nd.crashed then begin
          incr recoveries;
          nd.restarts <- nd.restarts + 1;
          let impl = make_impl ~machine:m ~restart:nd.restarts in
          nd.impl <- { impl with config = wrap_slow m impl.config };
          nd.crashed <- false;
          nd.live <- Some (create_live nd)
        end
  in
  (* --- main loop: interleave machine stepping with event delivery,
     always acting at the globally smallest time --- *)
  let finished = ref false in
  let last_event_time = ref 0 in
  while (not !finished) && !unresolved > 0 do
    let t_ev = Heap.peek_time heap in
    let best = ref (-1) and best_t = ref max_int in
    Array.iter
      (fun nd ->
        match nd.live with
        | Some l when not nd.crashed -> (
            match Machine.Live.next_action l with
            | Some tm when tm < !best_t ->
                best := nd.nid;
                best_t := tm
            | _ -> ())
        | _ -> ())
      nodes;
    match (t_ev, !best) with
    | None, -1 -> finished := true
    | Some t, -1 ->
        if t > c.horizon then finished := true
        else begin
          let t, ev = Heap.pop heap in
          last_event_time := max !last_event_time t;
          handle t ev
        end
    | None, m ->
        if !best_t > c.horizon then finished := true
        else ignore (Machine.Live.step (Option.get nodes.(m).live))
    | Some t, m ->
        if min t !best_t > c.horizon then finished := true
        else if t <= !best_t then begin
          let t, ev = Heap.pop heap in
          last_event_time := max !last_event_time t;
          handle t ev
        end
        else ignore (Machine.Live.step (Option.get nodes.(m).live))
  done;
  (* Drain surviving replicas to quiescence so [cycles] is the makespan
     of all admitted work — scavenger batches, losing hedge attempts —
     and not just the last ack. The per-node completion counters after
     this drain are what the cluster oracle's work-conservation
     invariant compares. *)
  Array.iter
    (fun (nd : node) ->
      match nd.live with
      | Some l when not nd.crashed ->
          let more = ref true in
          while !more do
            match Machine.Live.next_action l with
            | Some t when t <= c.horizon -> ignore (Machine.Live.step l)
            | _ -> more := false
          done
      | _ -> ())
    nodes;
  (* unresolved requests at drain/horizon were never answered *)
  let unanswered = ref 0 in
  Array.iter
    (fun r ->
      if r.outcome = Pending then begin
        r.outcome <- Unanswered;
        incr unanswered
      end)
    rqs;
  (* the acked-payload invariant: every acked response corresponds to a
     context that actually ran to completion *)
  Array.iter
    (fun r ->
      if r.outcome = Acked then
        match r.winner_ctx with
        | Some ctx when ctx.Context.status = Context.Done -> ()
        | _ -> incr lost_acked)
    rqs;
  let views =
    Array.map
      (fun nd ->
        let final = match nd.live with Some l -> Some (Machine.Live.finish l) | None -> None in
        let incarnations =
          (match final with Some r -> [ r ] | None -> []) @ nd.snapshots
        in
        {
          id = nd.nid;
          crashed = nd.crashed;
          restarts = nd.restarts;
          completed =
            List.fold_left (fun acc (r : Machine.result) -> acc + r.Machine.completed) 0
              incarnations;
          cycles =
            List.fold_left (fun acc (r : Machine.result) -> max acc r.Machine.cycles) 0
              incarnations;
          nic_rx = Nic.rx nd.nic;
          nic_fast = Nic.fast nd.nic;
          nic_overflow = Nic.overflow nd.nic;
          nic_tx = Nic.tx nd.nic;
          result = final;
        })
      nodes
  in
  let cycles =
    Array.fold_left (fun acc (v : node_view) -> max acc v.cycles) !last_event_time views
  in
  let answered =
    Array.to_list rqs
    |> List.filter_map (fun r ->
           if r.outcome = Acked then Some (r.done_at - r.spec.send) else None)
  in
  let dropped = !expired + !shed + !unanswered in
  let split = Latency.split ~censor:c.slo_deadline ~dropped answered in
  {
    cycles;
    offered = Array.length rqs;
    acked = !acked;
    expired = !expired;
    shed = !shed;
    unanswered = !unanswered;
    lost_acked = !lost_acked;
    split;
    requests = rqs;
    nodes = views;
    brownout_engaged = !brownout_engaged;
    counters =
      [
        ("client.acked", !acked);
        ("client.expired", !expired);
        ("client.shed", !shed);
        ("client.unanswered", !unanswered);
        ("client.retries", !retries);
        ("client.hedges", !hedges);
        ("client.hedge_wins", !hedge_wins);
        ("client.hedge_losses", !hedge_losses);
        ("client.hedges_suppressed", !hedges_suppressed);
        ("client.late_responses", !late_responses);
        ("lb.quarantines", Lb.quarantines lb);
        ("lb.readmissions", Lb.readmissions lb);
        ("lb.probes", !probes);
        ("net.sent", Link.sent link);
        ("net.req_lost", !req_lost);
        ("net.resp_lost", !resp_lost);
        ("net.link_dropped", Link.dropped link);
        ("net.reordered", Link.reordered link);
        ("net.dead_deliveries", !dead_deliveries);
        ("nic.overflow",
         Array.fold_left (fun acc (v : node_view) -> acc + v.nic_overflow) 0 views);
        ("faults.crashes", !crashes);
        ("faults.recoveries", !recoveries);
        ("brownout.engaged", !brownout_engaged);
        ("brownout.shed", !brownout_shed);
        ("lost_acked", !lost_acked);
      ];
  }

let to_json r =
  Json.Obj
    [
      ("cycles", Json.Int r.cycles);
      ("offered", Json.Int r.offered);
      ("acked", Json.Int r.acked);
      ("expired", Json.Int r.expired);
      ("shed", Json.Int r.shed);
      ("unanswered", Json.Int r.unanswered);
      ("lost_acked", Json.Int r.lost_acked);
      ("brownout_engaged", Json.Int r.brownout_engaged);
      ("split", Latency.split_to_json r.split);
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) r.counters));
      ( "nodes",
        Json.List
          (Array.to_list
             (Array.map
                (fun v ->
                  Json.Obj
                    [
                      ("id", Json.Int v.id);
                      ("crashed", Json.Bool v.crashed);
                      ("restarts", Json.Int v.restarts);
                      ("completed", Json.Int v.completed);
                      ("cycles", Json.Int v.cycles);
                      ("nic_rx", Json.Int v.nic_rx);
                      ("nic_fast", Json.Int v.nic_fast);
                      ("nic_overflow", Json.Int v.nic_overflow);
                      ("nic_tx", Json.Int v.nic_tx);
                    ])
                r.nodes)) );
    ]
