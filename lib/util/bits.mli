(** Bit-set helpers over [int] masks (registers fit in 16 bits). *)

(** Number of set bits. *)
val popcount : int -> int

(** [mem mask i] tests bit [i]. *)
val mem : int -> int -> bool

(** [add mask i] sets bit [i]. *)
val add : int -> int -> int

(** [remove mask i] clears bit [i]. *)
val remove : int -> int -> int

(** [union a b] is the bitwise or. *)
val union : int -> int -> int

(** [diff a b] keeps the bits of [a] not in [b]. *)
val diff : int -> int -> int

(** [all n] is the mask with bits [0..n-1] set. *)
val all : int -> int

(** [fold f mask acc] folds [f] over the set bit indices, ascending. *)
val fold : (int -> 'a -> 'a) -> int -> 'a -> 'a
