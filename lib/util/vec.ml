type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length v = v.len

let grow v x =
  let cap = Array.length v.data in
  let cap' = if cap = 0 then 8 else cap * 2 in
  let data = Array.make cap' x in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let check v i = if i < 0 || i >= v.len then invalid_arg "Vec: index out of bounds"

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

let to_array v = Array.sub v.data 0 v.len

let to_list v = Array.to_list (to_array v)

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let clear v = v.len <- 0

let is_empty v = v.len = 0

let of_list xs =
  let v = create () in
  List.iter (push v) xs;
  v
