(** Minimal JSON values: enough to emit the telemetry schemas and to
    parse them back in tests. No external dependency; numbers are kept
    as OCaml [int]/[float] and non-finite floats serialize as [null]
    (JSON has no representation for them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact one-line rendering with full string escaping. *)
val to_string : t -> string

(** Pretty rendering (2-space indent) — what the exporters write to
    disk so traces stay diffable. *)
val to_string_pretty : t -> string

val write : path:string -> t -> unit

exception Parse_error of string

(** Strict-enough parser for round-trip tests: objects, arrays,
    strings (with escapes), numbers, booleans, null.
    @raise Parse_error on malformed input. *)
val of_string : string -> t

(** Accessors used by the tests; [None] on shape mismatch. *)
val member : string -> t -> t option

val to_list_opt : t -> t list option

val to_int_opt : t -> int option

val to_string_opt : t -> string option
