let popcount mask =
  let rec loop m acc = if m = 0 then acc else loop (m lsr 1) (acc + (m land 1)) in
  loop mask 0

let mem mask i = mask land (1 lsl i) <> 0

let add mask i = mask lor (1 lsl i)

let remove mask i = mask land lnot (1 lsl i)

let union a b = a lor b

let diff a b = a land lnot b

let all n = (1 lsl n) - 1

let fold f mask acc =
  let rec loop i m acc =
    if m = 0 then acc
    else if m land 1 <> 0 then loop (i + 1) (m lsr 1) (f i acc)
    else loop (i + 1) (m lsr 1) acc
  in
  loop 0 mask acc
