(** Growable array (the standard library gains [Dynarray] only in 5.2). *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val push : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit

(** [to_array v] copies the contents into a fresh array. *)
val to_array : 'a t -> 'a array

val to_list : 'a t -> 'a list

val iter : ('a -> unit) -> 'a t -> unit

val clear : 'a t -> unit

val is_empty : 'a t -> bool

(** [of_list xs] builds a vector holding the elements of [xs] in order. *)
val of_list : 'a list -> 'a t
