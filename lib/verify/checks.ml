open Stallhide_isa
open Stallhide_util
open Stallhide_binopt
open Stallhide_cpu
module D = Diagnostic
module A = Stallhide_analysis

let insertable = function
  | Instr.Prefetch _ | Instr.Yield _ | Instr.Yield_cond _ | Instr.Guard _ -> true
  | Instr.Binop _ | Instr.Mov _ | Instr.Load _ | Instr.Store _ | Instr.Branch _
  | Instr.Jump _ | Instr.Call _ | Instr.Ret | Instr.Accel_issue _ | Instr.Accel_wait _
  | Instr.Opmark | Instr.Nop | Instr.Halt ->
      false

let addr_str rs disp =
  if disp = 0 then Printf.sprintf "[%s]" (Reg.name rs)
  else if disp > 0 then Printf.sprintf "[%s+%d]" (Reg.name rs) disp
  else Printf.sprintf "[%s%d]" (Reg.name rs) disp

(* --- CFG equivalence modulo instrumentation --- *)

let inserted_map ~orig_of_new inst =
  let n = Program.length inst in
  let arr = Array.make n false in
  (* inserted instructions precede the original instruction they map
     to, so every pc of a same-original-pc run except the last one is
     an insertion *)
  if Array.length orig_of_new = n then
    for pc = 0 to n - 2 do
      arr.(pc) <- orig_of_new.(pc + 1) = orig_of_new.(pc)
    done;
  arr

let cfg_equivalence ~orig ~orig_of_new inst =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let n_new = Program.length inst and n_old = Program.length orig in
  if Array.length orig_of_new <> n_new then
    add
      (D.error D.Cfg_equiv
         (Printf.sprintf "pc map has %d entries for a %d-instruction program"
            (Array.length orig_of_new) n_new))
  else begin
    let n = ref 0 in
    let o = ref 0 in
    let structural_ok = ref true in
    while !structural_ok && !o < n_old do
      if !n >= n_new || orig_of_new.(!n) <> !o then begin
        add
          (D.error D.Cfg_equiv
             ~pc:(min !n (n_new - 1))
             ~witness:[ !o ]
             (Printf.sprintf
                "original instruction at pc %d (%S) has no image in the instrumented program"
                !o
                (Instr.to_string (Program.instr orig !o))));
        structural_ok := false
      end
      else begin
        (* skip over the inserted run; the last new pc mapping to !o is
           the original instruction itself *)
        while !n + 1 < n_new && orig_of_new.(!n + 1) = !o do
          let i = Program.instr inst !n in
          if not (insertable i) then
            add
              (D.error D.Cfg_equiv ~pc:!n ~witness:[ !o ]
                 (Printf.sprintf
                    "non-instrumentation instruction %S inserted before original pc %d"
                    (Instr.to_string i) !o));
          incr n
        done;
        let i = Program.instr inst !n in
        let oi = Program.instr orig !o in
        if not (Instr.equal i oi) then
          add
            (D.error D.Cfg_equiv ~pc:!n ~witness:[ !o ]
               (Printf.sprintf "instruction altered: %S instead of original %S"
                  (Instr.to_string i) (Instr.to_string oi)))
        else begin
          match Instr.target i with
          | None -> ()
          | Some l ->
              let t_new = Program.resolved_target inst !n in
              let t_old = Program.resolved_target orig !o in
              let img =
                if t_new >= 0 && t_new < n_new then orig_of_new.(t_new) else -1
              in
              if img <> t_old then
                add
                  (D.error D.Cfg_equiv ~pc:!n
                     ~witness:[ t_new; t_old ]
                     (Printf.sprintf
                        "control transfer %S retargeted: lands on original pc %d, expected %d"
                        l img t_old))
        end;
        incr n;
        incr o
      end
    done;
    if !structural_ok && !n < n_new then
      add
        (D.error D.Cfg_equiv ~pc:!n
           (Printf.sprintf "%d trailing instruction(s) beyond the original program"
              (n_new - !n)));
    (* every original label must mark the image of the instruction it
       marked originally (trailing labels stay trailing) *)
    List.iter
      (function
        | Program.Ins _ -> ()
        | Program.Label l ->
            let li_old = Program.label_index orig l in
            if not (Program.has_label inst l) then
              add (D.error D.Cfg_equiv (Printf.sprintf "label %S dropped" l))
            else
              let li_new = Program.label_index inst l in
              let img = if li_new >= n_new then n_old else orig_of_new.(li_new) in
              if img <> li_old then
                add
                  (D.error D.Cfg_equiv
                     ~pc:(min li_new (n_new - 1))
                     ~witness:[ li_old ]
                     (Printf.sprintf "label %S moved: marks original pc %d, expected %d" l
                        img li_old)))
      (Program.to_items orig)
  end;
  List.rev !diags

(* --- Liveness soundness --- *)

let liveness_soundness prog =
  let cfg = Cfg.build prog in
  let lv = Liveness.compute cfg in
  let diags = ref [] in
  for pc = 0 to Program.length prog - 1 do
    match Program.instr prog pc with
    | Instr.Yield _ | Instr.Yield_cond _ -> (
        match (Program.annot prog pc).Program.live_regs with
        | None -> () (* unannotated yields save everything: sound *)
        | Some k ->
            let mask = Liveness.live_out lv pc in
            let need = Bits.popcount mask in
            let regs = List.rev (Bits.fold (fun r acc -> r :: acc) mask []) in
            if k < need then
              diags :=
                D.error D.Liveness ~pc ~witness:regs
                  (Printf.sprintf
                     "context save covers %d register(s) but %d are live-out" k need)
                :: !diags
            else if k > need then
              diags :=
                D.warning D.Liveness ~pc ~witness:regs
                  (Printf.sprintf
                     "stale annotation: saves %d register(s), only %d live-out" k need)
                :: !diags)
    | _ -> ()
  done;
  List.rev !diags

(* --- Prefetch/yield pairing --- *)

let prefetch_pairing ?(is_inserted = fun _ -> false)
    ?(mem = Stallhide_mem.Memconfig.default) prog =
  let cfg = Cfg.build prog in
  let dom = Dominators.compute cfg in
  let diags = ref [] in
  let report pc ?witness msg =
    let mk = if is_inserted pc then D.error else D.warning in
    diags := mk D.Pairing ~pc ?witness msg :: !diags
  in
  for pc = 0 to Program.length prog - 1 do
    match Program.instr prog pc with
    | Instr.Prefetch (rs, disp) | Instr.Yield_cond (rs, disp) ->
        let b = Cfg.block_of_pc cfg pc in
        let rec scan k =
          if k > b.Cfg.last then `No_load
          else
            match Program.instr prog k with
            | Instr.Load (_, rs', disp') when rs' = rs && disp' = disp -> `Paired k
            | i when Instr.defs i land (1 lsl rs) <> 0 -> `Clobbered k
            | _ -> scan (k + 1)
        in
        (match scan (pc + 1) with
        | `Paired l ->
            let bl = (Cfg.block_of_pc cfg l).Cfg.id in
            if not (Dominators.dominates dom b.Cfg.id bl) then
              report pc ~witness:[ l ]
                (Printf.sprintf "prefetch of %s does not dominate its paired load"
                   (addr_str rs disp))
            else begin
              (* The pair must actually hide the latency it was priced
                 for: either a yield sits between issue and use (another
                 lane runs while the line travels), or the proven
                 straight-line cycle distance covers a DRAM fill by
                 itself. A [Yield_cond] is its own yield. *)
              match Program.instr prog pc with
              | Instr.Prefetch _ ->
                  let yield_between = ref false in
                  for k = pc + 1 to l - 1 do
                    match Program.instr prog k with
                    | Instr.Yield _ | Instr.Yield_cond _ -> yield_between := true
                    | _ -> ()
                  done;
                  let lead =
                    A.Distance.prefetch_lead mem prog ~prefetch_pc:pc ~load_pc:l
                  in
                  if
                    (not !yield_between)
                    && lead < mem.Stallhide_mem.Memconfig.dram_latency
                  then
                    report pc ~witness:[ l ]
                      (Printf.sprintf
                         "prefetch lead of %d cycle(s) to the load of %s covers neither the DRAM latency (%d) nor a yield"
                         lead (addr_str rs disp)
                         mem.Stallhide_mem.Memconfig.dram_latency)
              | _ -> ()
            end
        | `Clobbered k ->
            report pc ~witness:[ k ]
              (Printf.sprintf
                 "address register %s clobbered at pc %d before the load of %s"
                 (Reg.name rs) k (addr_str rs disp))
        | `No_load ->
            report pc
              (Printf.sprintf "no paired load of %s in the block" (addr_str rs disp)))
    | _ -> ()
  done;
  List.rev !diags

(* --- Scavenger interval bound --- *)

(* The scavenger pass's static fallback: base cost plus a nominal 4
   extra cycles per load (Scavenger_pass.default_opts.load_static_latency). *)
let static_cost prog pc =
  let i = Program.instr prog pc in
  float_of_int (Cost.base i + if Instr.is_load i then 4 else 0)

let interval_bound ~target ?slack ?cost prog =
  if target <= 0 then invalid_arg "Checks.interval_bound: target must be positive";
  let slack = match slack with Some s -> s | None -> target in
  let cost = match cost with Some c -> c | None -> static_cost prog in
  let cfg = Cfg.build prog in
  (* Yield-free loops are only unbounded when no iteration bound can be
     proven: re-derive the bounds here (never trusting the pass) and
     charge bounded loops their (trips - 1) x body-cost budget. *)
  let doms = Dominators.compute cfg in
  let bounds = A.Loop_bounds.infer cfg doms (A.Value.block_envs cfg) in
  let r =
    A.Distance.yield_free_paths ~cost
      ~trips:(fun ~header_pc -> A.Loop_bounds.trips_at bounds ~header_pc)
      cfg
  in
  let diags = ref [] in
  List.iter
    (fun (l : Dominators.loop) ->
      let firsts =
        List.map (fun b -> (Cfg.block cfg b).Cfg.first) l.Dominators.body
      in
      diags :=
        D.error D.Interval
          ~pc:(Cfg.block cfg l.Dominators.header).Cfg.first
          ~witness:firsts
          "yield-free cycle with no proven iteration bound: inter-yield interval is unbounded"
        :: !diags)
    r.A.Distance.unproven;
  if not r.A.Distance.converged then
    diags :=
      D.error D.Interval ~pc:r.A.Distance.worst_pc
        "irreducible yield-free cycle: inter-yield interval is unbounded"
      :: !diags;
  if r.A.Distance.unproven = [] && r.A.Distance.converged then begin
    let bound = float_of_int (target + slack) in
    if r.A.Distance.worst > bound +. 1e-9 then begin
      let budget_note =
        match r.A.Distance.budgeted with
        | [] -> ""
        | bs ->
            Printf.sprintf " (includes %d proven loop budget(s))" (List.length bs)
      in
      diags :=
        D.error D.Interval ~pc:r.A.Distance.worst_pc ~witness:r.A.Distance.witness
          (Printf.sprintf "yield-free path of %.0f cycles exceeds target %d (+%d slack)%s"
             r.A.Distance.worst target slack budget_note)
        :: !diags
    end
  end;
  List.rev !diags

(* --- SFI guard completeness --- *)

module Key_set = Set.Make (struct
  type t = int * int

  let compare = Stdlib.compare
end)

type avail = Top | Avail of Key_set.t

let sfi_completeness ?(guard_loads = true) ?(guard_stores = true) prog =
  let cfg = Cfg.build prog in
  let nb = Cfg.block_count cfg in
  let key rs disp = (rs, disp asr 6) in
  let kill_defs i s =
    let defs = Instr.defs i in
    if defs = 0 then s
    else Key_set.filter (fun (rs, _) -> defs land (1 lsl rs) = 0) s
  in
  let transfer_ins i s =
    match i with
    | Instr.Guard (rs, disp) -> Key_set.add (key rs disp) s
    | Instr.Call _ -> Key_set.empty (* the callee may guard or clobber anything *)
    | _ -> kill_defs i s
  in
  let transfer_block b s =
    let s = ref s in
    for pc = b.Cfg.first to b.Cfg.last do
      s := transfer_ins (Program.instr prog pc) !s
    done;
    !s
  in
  let meet a b =
    match (a, b) with
    | Top, x | x, Top -> x
    | Avail s1, Avail s2 -> Avail (Key_set.inter s1 s2)
  in
  let eq a b =
    match (a, b) with
    | Top, Top -> true
    | Avail s1, Avail s2 -> Key_set.equal s1 s2
    | _ -> false
  in
  let out = Array.make nb Top in
  let in_of b =
    (* the program entry contributes an empty set; unreachable blocks
       stay Top and are not reported *)
    let base = if b.Cfg.id = 0 then Avail Key_set.empty else Top in
    List.fold_left (fun acc p -> meet acc out.(p)) base b.Cfg.preds
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for id = 0 to nb - 1 do
      let b = Cfg.block cfg id in
      let o =
        match in_of b with Top -> Top | Avail s -> Avail (transfer_block b s)
      in
      if not (eq o out.(id)) then begin
        out.(id) <- o;
        changed := true
      end
    done
  done;
  let diags = ref [] in
  for id = 0 to nb - 1 do
    let b = Cfg.block cfg id in
    match in_of b with
    | Top -> ()
    | Avail s0 ->
        let s = ref s0 in
        for pc = b.Cfg.first to b.Cfg.last do
          let i = Program.instr prog pc in
          let want rs disp kind =
            if not (Key_set.mem (key rs disp) !s) then
              diags :=
                D.error D.Sfi ~pc
                  (Printf.sprintf "%s of %s not covered by a guard on every path" kind
                     (addr_str rs disp))
                :: !diags
          in
          (match i with
          | Instr.Load (_, rs, disp) when guard_loads -> want rs disp "load"
          | Instr.Accel_issue (rs, disp) when guard_loads -> want rs disp "accel-issue"
          | Instr.Store (rs, disp, _) when guard_stores -> want rs disp "store"
          | _ -> ());
          s := transfer_ins i !s
        done
  done;
  List.rev !diags

(* --- Cooperative-atomicity lint --- *)

let atomicity prog =
  let cfg = Cfg.build prog in
  let diags = ref [] in
  for id = 0 to Cfg.block_count cfg - 1 do
    let b = Cfg.block cfg id in
    (* key -> (opening load pc, yields seen inside the window so far) *)
    let windows : (int * int, int * int list) Hashtbl.t = Hashtbl.create 4 in
    let kill_defs i =
      let defs = Instr.defs i in
      if defs <> 0 then
        Hashtbl.iter
          (fun (rs, d) _ ->
            if defs land (1 lsl rs) <> 0 then Hashtbl.remove windows (rs, d))
          (Hashtbl.copy windows)
    in
    for pc = b.Cfg.first to b.Cfg.last do
      let i = Program.instr prog pc in
      match i with
      | Instr.Load (_, rs, disp) ->
          kill_defs i;
          Hashtbl.replace windows (rs, disp) (pc, [])
      | Instr.Store (rs, disp, _) -> (
          match Hashtbl.find_opt windows (rs, disp) with
          | Some (start, yields) ->
              List.iter
                (fun ypc ->
                  diags :=
                    D.warning D.Atomicity ~pc:ypc ~witness:[ start; pc ]
                      (Printf.sprintf
                         "yield between load (pc %d) and dependent store (pc %d) to %s"
                         start pc (addr_str rs disp))
                    :: !diags)
                (List.rev yields);
              Hashtbl.remove windows (rs, disp)
          | None -> ())
      | Instr.Yield _ | Instr.Yield_cond _ ->
          Hashtbl.iter
            (fun k (start, yields) -> Hashtbl.replace windows k (start, pc :: yields))
            (Hashtbl.copy windows)
      | _ -> kill_defs i
    done
  done;
  List.rev !diags
