type severity = Error | Warning | Info

type check = Cfg_equiv | Liveness | Pairing | Interval | Sfi | Atomicity

let check_id = function
  | Cfg_equiv -> "cfg-equiv"
  | Liveness -> "liveness"
  | Pairing -> "pairing"
  | Interval -> "interval"
  | Sfi -> "sfi"
  | Atomicity -> "atomicity"

let all_checks = [ Cfg_equiv; Liveness; Pairing; Interval; Sfi; Atomicity ]

let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"

type t = {
  check : check;
  severity : severity;
  pc : int;
  message : string;
  witness : int list;
}

let make severity check ?(pc = -1) ?(witness = []) message =
  { check; severity; pc; message; witness }

let error check = make Error check

let warning check = make Warning check

let info check = make Info check

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  match Int.compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 -> (
      match Int.compare a.pc b.pc with
      | 0 -> Stdlib.compare (check_id a.check) (check_id b.check)
      | c -> c)
  | c -> c

let pp fmt d =
  Format.fprintf fmt "%s[%s]" (severity_name d.severity) (check_id d.check);
  if d.pc >= 0 then Format.fprintf fmt " pc %d" d.pc;
  Format.fprintf fmt ": %s" d.message;
  match d.witness with
  | [] -> ()
  | w ->
      Format.fprintf fmt " (witness: %s)"
        (String.concat " " (List.map string_of_int w))

let to_string d = Format.asprintf "%a" pp d

let to_json d =
  let open Stallhide_util in
  Json.Obj
    [
      ("check", Json.String (check_id d.check));
      ("severity", Json.String (severity_name d.severity));
      ("pc", Json.Int d.pc);
      ("message", Json.String d.message);
      ("witness", Json.List (List.map (fun pc -> Json.Int pc) d.witness));
    ]
