(** Structured findings of the translation validator ({!Verify}).

    A diagnostic pins one defect (or lint smell) to a check category, a
    severity, a pc in the program under inspection, and a witness — the
    pcs (or, for the liveness check, register numbers) substantiating
    the finding. Diagnostics render as one-line text for the CLI and as
    JSON for machine consumers. *)

type severity = Error | Warning | Info

type check =
  | Cfg_equiv  (** instrumented CFG ≠ original modulo inserted instructions *)
  | Liveness  (** a liveness-limited context save drops a live register *)
  | Pairing  (** a prefetch/cyield without a dominated same-address load *)
  | Interval  (** a yield-free path exceeds the scavenger target interval *)
  | Sfi  (** a memory op not dominated by a guard for its line *)
  | Atomicity  (** a yield splits a read-modify-write window *)

(** Stable identifier used in text output, JSON, and the obs registry:
    ["cfg-equiv"], ["liveness"], ["pairing"], ["interval"], ["sfi"],
    ["atomicity"]. *)
val check_id : check -> string

val all_checks : check list

val severity_name : severity -> string

type t = {
  check : check;
  severity : severity;
  pc : int;  (** location in the inspected program; [-1] = whole program *)
  message : string;
  witness : int list;
}

val error : check -> ?pc:int -> ?witness:int list -> string -> t

val warning : check -> ?pc:int -> ?witness:int list -> string -> t

val info : check -> ?pc:int -> ?witness:int list -> string -> t

(** Severity first (errors before warnings before infos), then pc. *)
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val to_json : t -> Stallhide_util.Json.t
