(** The individual static-analysis passes of the translation validator.

    Every check recomputes what it needs (CFG, liveness, dominators)
    from scratch on the program it is given — it never trusts the
    instrumentation passes' own annotations or reports, which is the
    point: a pass bug that corrupts both the program and its report is
    still caught. Each check returns its findings as {!Diagnostic.t}
    values; an empty list means the program is clean for that check. *)

open Stallhide_isa

(** [cfg_equivalence ~orig ~orig_of_new inst] checks that [inst] is
    [orig] with only instrumentation instructions ([prefetch], the
    yield family, [guard]) inserted: erasing the insertions must yield
    the original instruction sequence, every original label must
    resolve to the same original instruction, and every branch/jump/
    call in [inst] must target the image of its original target.
    [orig_of_new] is the pc map returned by the rewriter
    ([new pc -> original pc]). *)
val cfg_equivalence :
  orig:Program.t -> orig_of_new:int array -> Program.t -> Diagnostic.t list

(** True at the new pcs [cfg_equivalence] would classify as inserted
    (every pc of a same-original-pc run except the last). Used to grade
    pairing findings: a defective *inserted* prefetch is an error, a
    hand-written one only a warning. *)
val inserted_map : orig_of_new:int array -> Program.t -> bool array

(** Recomputes liveness on the instrumented program and checks every
    yield's [live_regs] annotation covers the registers actually
    live-out there. An unannotated yield (full save) is trivially
    sound; an annotation *below* the recomputed count is an error (a
    context switch there would lose state); above it, a warning (stale
    annotation, harmless but oversaving). Witnesses are the live
    register numbers. *)
val liveness_soundness : Program.t -> Diagnostic.t list

(** Every [Prefetch (rs, d)] / [Yield_cond (rs, d)] must be paired with
    a later [Load] of the same [rs + d] in its basic block (hence
    dominating it), with no intervening redefinition of [rs]. A paired
    plain prefetch must additionally hide the latency it was priced
    for: either a yield sits between issue and use, or its proven
    straight-line cycle lead (sum of guaranteed per-instruction costs,
    {!Stallhide_analysis.Distance.prefetch_lead}) covers [mem]'s DRAM
    latency outright. [is_inserted pc] upgrades findings at
    instrumentation-inserted pcs from warning to error. *)
val prefetch_pairing :
  ?is_inserted:(int -> bool) ->
  ?mem:Stallhide_mem.Memconfig.t ->
  Program.t ->
  Diagnostic.t list

(** Longest yield-free path check for scavenger output: every cycle of
    the CFG must either contain a yield or carry a {i proven} iteration
    bound (re-derived here via {!Stallhide_analysis.Loop_bounds}, never
    trusted from the pass), in which case the loop is charged a budget
    of (trips - 1) x body cost; a yield-free cycle with no proven bound
    is an error with the loop body as witness. The maximum-cost
    yield-free path, budgets included, must not exceed [target + slack]
    (default slack = [target], matching the pass's worst case of
    deferring an insertion past a read-modify-write window). [cost]
    defaults to the scavenger pass's static estimate
    ({!Stallhide_cpu.Cost.base} + 4 extra cycles per load). The witness
    of a too-long path is the chain of block-entry pcs ending at the
    instruction where the bound is exceeded. *)
val interval_bound :
  target:int ->
  ?slack:int ->
  ?cost:(int -> float) ->
  Program.t ->
  Diagnostic.t list

(** Guard completeness for SFI-transformed programs: every load/store/
    accelerator-issue must have a [Guard] for its (base register, line)
    available on *every* path reaching it — a forward must-analysis
    (intersection over predecessors), gen at guards, kill at base
    redefinitions and calls. This independently re-derives the pass's
    redundancy-elimination: an elided guard whose coverage does not
    actually hold on some path is reported. *)
val sfi_completeness :
  ?guard_loads:bool -> ?guard_stores:bool -> Program.t -> Diagnostic.t list

(** Cooperative-atomicity lint: a yield strictly between a [Load] of
    [rs + d] and a later [Store] to the same [rs + d] (base not
    redefined in between, same basic block) lets another lane observe
    or clobber the half-done read-modify-write — the store-mutating
    BFS/group-by hazard. Reported as warnings. *)
val atomicity : Program.t -> Diagnostic.t list
