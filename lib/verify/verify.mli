(** Translation validation for instrumented binaries.

    The instrumentation passes of [lib/binopt] rewrite programs; this
    module validates the rewrite — independently recomputing CFG,
    liveness, dominators and dataflow on the *output* program and
    checking it against the original (when available) and against the
    passes' contracts. It is run automatically at the end of
    {!Stallhide.Pipeline.instrument_with} (fail-fast via {!Rejected},
    with [~verify:false] as the escape hatch) and drives the
    [stallhide lint] CLI subcommand.

    Check categories (see {!Checks} for the individual analyses):
    cfg-equiv, liveness, pairing, interval, sfi, atomicity. *)

open Stallhide_isa

type against = {
  orig : Program.t;  (** the pre-instrumentation program *)
  orig_of_new : int array;  (** the rewriter's pc map, [new pc -> original pc] *)
}

type config = {
  against : against option;
      (** enables the cfg-equiv check and upgrades pairing findings at
          inserted pcs to errors *)
  target_interval : int option;  (** enables the interval-bound check *)
  interval_slack : int option;
      (** extra cycles tolerated over [target_interval]; default =
          the target itself (the pass's worst case when it defers an
          insertion past a read-modify-write window) *)
  expect_sfi : bool;  (** enables the guard-completeness check *)
  check_atomicity : bool;  (** default [true] *)
}

(** Liveness, pairing and atomicity only — the checks meaningful for
    any program. *)
val default_config : config

type outcome = {
  diags : Diagnostic.t list;  (** sorted: errors first, then by pc *)
  checks_run : Diagnostic.check list;
}

val errors : outcome -> int

val warnings : outcome -> int

(** No error-severity diagnostics (warnings allowed). *)
val ok : outcome -> bool

(** No diagnostics at all. *)
val clean : outcome -> bool

val pp_outcome : Format.formatter -> outcome -> unit

val outcome_to_json : outcome -> Stallhide_util.Json.t

exception Rejected of outcome
(** Raised by {!run_exn} when any error-severity diagnostic is found.
    A printer is registered, so an uncaught rejection shows the
    diagnostics. *)

(** Run the configured checks; diagnostics are also counted in
    [registry] when given (counters [verify.programs], [verify.checks],
    [verify.errors]/[warnings]/[infos] and [verify.diag.<check-id>]). *)
val run :
  ?config:config -> ?registry:Stallhide_obs.Registry.t -> Program.t -> outcome

(** Like {!run} but raises {!Rejected} when {!ok} is false. *)
val run_exn :
  ?config:config -> ?registry:Stallhide_obs.Registry.t -> Program.t -> outcome

(** Convenience for validating a pass output against its input:
    {!run} with [against] set (and the interval/SFI checks enabled
    when the corresponding argument is given). *)
val validate :
  orig:Program.t ->
  orig_of_new:int array ->
  ?target_interval:int ->
  ?expect_sfi:bool ->
  ?registry:Stallhide_obs.Registry.t ->
  Program.t ->
  outcome
