open Stallhide_isa
module D = Diagnostic

type against = { orig : Program.t; orig_of_new : int array }

type config = {
  against : against option;
  target_interval : int option;
  interval_slack : int option;
  expect_sfi : bool;
  check_atomicity : bool;
}

let default_config =
  {
    against = None;
    target_interval = None;
    interval_slack = None;
    expect_sfi = false;
    check_atomicity = true;
  }

type outcome = { diags : D.t list; checks_run : D.check list }

let count sev o = List.length (List.filter (fun d -> d.D.severity = sev) o.diags)

let errors o = count D.Error o

let warnings o = count D.Warning o

let ok o = errors o = 0

let clean o = o.diags = []

let pp_outcome fmt o =
  if o.diags = [] then
    Format.fprintf fmt "verify: clean (%d check(s) run)@." (List.length o.checks_run)
  else begin
    List.iter (fun d -> Format.fprintf fmt "%a@." D.pp d) o.diags;
    Format.fprintf fmt "verify: %d error(s), %d warning(s)@." (errors o) (warnings o)
  end

let outcome_to_json o =
  let open Stallhide_util in
  Json.Obj
    [
      ("errors", Json.Int (errors o));
      ("warnings", Json.Int (warnings o));
      ( "checks",
        Json.List (List.map (fun c -> Json.String (D.check_id c)) o.checks_run) );
      ("diagnostics", Json.List (List.map D.to_json o.diags));
    ]

exception Rejected of outcome

let () =
  Printexc.register_printer (function
    | Rejected o ->
        Some (Format.asprintf "Stallhide_verify.Verify.Rejected@.%a" pp_outcome o)
    | _ -> None)

let run ?(config = default_config) ?registry prog =
  let checks = ref [] and diags = ref [] in
  let ran c ds =
    checks := c :: !checks;
    diags := !diags @ ds
  in
  (match config.against with
  | Some { orig; orig_of_new } ->
      ran D.Cfg_equiv (Checks.cfg_equivalence ~orig ~orig_of_new prog)
  | None -> ());
  ran D.Liveness (Checks.liveness_soundness prog);
  let is_inserted =
    match config.against with
    | Some { orig_of_new; _ } ->
        let m = Checks.inserted_map ~orig_of_new prog in
        fun pc -> pc >= 0 && pc < Array.length m && m.(pc)
    | None -> fun _ -> false
  in
  ran D.Pairing (Checks.prefetch_pairing ~is_inserted prog);
  (match config.target_interval with
  | Some target ->
      ran D.Interval (Checks.interval_bound ~target ?slack:config.interval_slack prog)
  | None -> ());
  if config.expect_sfi then ran D.Sfi (Checks.sfi_completeness prog);
  if config.check_atomicity then ran D.Atomicity (Checks.atomicity prog);
  let outcome = { diags = List.sort D.compare !diags; checks_run = List.rev !checks } in
  (match registry with
  | Some reg ->
      let open Stallhide_obs in
      let c name = Registry.counter reg ~ctx:(-1) name in
      Registry.incr (c "verify.programs");
      Registry.incr ~by:(List.length outcome.checks_run) (c "verify.checks");
      List.iter
        (fun d ->
          Registry.incr (c ("verify." ^ D.severity_name d.D.severity ^ "s"));
          Registry.incr (c ("verify.diag." ^ D.check_id d.D.check)))
        outcome.diags
  | None -> ());
  outcome

let run_exn ?config ?registry prog =
  let o = run ?config ?registry prog in
  if not (ok o) then raise (Rejected o);
  o

let validate ~orig ~orig_of_new ?target_interval ?expect_sfi ?registry prog =
  let config =
    {
      default_config with
      against = Some { orig; orig_of_new };
      target_interval;
      expect_sfi = (match expect_sfi with Some b -> b | None -> false);
    }
  in
  run ~config ?registry prog
