(** Architectural-state capture for differential oracles.

    A capture is everything the ISA semantics can observe at the end of
    a run: per-context status and register file, plus the full memory
    image (every allocated word). Two arms of a differential oracle are
    semantically equivalent iff their captures are equal — timing,
    yield counts and cache contents are deliberately excluded, because
    they are exactly what instrumentation is {e allowed} to change. *)

open Stallhide_cpu
open Stallhide_mem

type t

(** [capture ~mem ctxs] snapshots the contexts (id, status, registers)
    and the image's allocated words. Order of [ctxs] is irrelevant —
    contexts are keyed by id. *)
val capture : mem:Address_space.t -> Context.t array -> t

val equal : t -> t -> bool

(** First observable difference, human-readable — [None] when equal.
    The order of comparison (statuses, then registers, then memory) is
    stable so shrunken counterexamples report the same mismatch. *)
val diff : t -> t -> string option

(** Any context that ended [Faulted]; well-formed generated programs
    never trap, so a fault in any arm is itself a counterexample. *)
val first_fault : t -> string option
