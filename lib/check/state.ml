open Stallhide_cpu
open Stallhide_mem

type ctx_state = { id : int; status : string; fault : string option; regs : int array }

type t = { ctxs : ctx_state list; mem : int array }

let capture ~mem ctxs =
  let ctxs =
    Array.to_list ctxs
    |> List.map (fun (c : Context.t) ->
           let status, fault =
             match c.Context.status with
             | Context.Ready -> ("ready", None)
             | Context.Done -> ("done", None)
             | Context.Faulted m -> ("faulted", Some m)
           in
           { id = c.Context.id; status; fault; regs = Context.regs_array c })
    |> List.sort (fun a b -> compare a.id b.id)
  in
  let words = Address_space.used_bytes mem / Address_space.word_bytes in
  { ctxs; mem = Array.init words (fun w -> Address_space.load mem (w * Address_space.word_bytes)) }

let equal a b = a.ctxs = b.ctxs && a.mem = b.mem

let diff a b =
  let rec ctx_diff = function
    | [], [] -> None
    | x :: xs, y :: ys ->
        if x.id <> y.id then Some (Printf.sprintf "context sets differ (%d vs %d)" x.id y.id)
        else if x.status <> y.status then
          Some
            (Printf.sprintf "ctx %d status: %s%s vs %s%s" x.id x.status
               (match x.fault with Some m -> " (" ^ m ^ ")" | None -> "")
               y.status
               (match y.fault with Some m -> " (" ^ m ^ ")" | None -> ""))
        else begin
          let r = ref None in
          for i = Array.length x.regs - 1 downto 0 do
            if x.regs.(i) <> y.regs.(i) then
              r := Some (Printf.sprintf "ctx %d r%d: %d vs %d" x.id i x.regs.(i) y.regs.(i))
          done;
          match !r with None -> ctx_diff (xs, ys) | d -> d
        end
    | _ -> Some "different context counts"
  in
  match ctx_diff (a.ctxs, b.ctxs) with
  | Some _ as d -> d
  | None ->
      if Array.length a.mem <> Array.length b.mem then
        Some
          (Printf.sprintf "memory sizes differ (%d vs %d words)" (Array.length a.mem)
             (Array.length b.mem))
      else begin
        let d = ref None in
        for w = Array.length a.mem - 1 downto 0 do
          if a.mem.(w) <> b.mem.(w) then
            d := Some (Printf.sprintf "mem[%d]: %d vs %d" (w * 8) a.mem.(w) b.mem.(w))
        done;
        !d
      end

let first_fault t =
  List.find_map
    (fun c ->
      match c.fault with
      | Some m -> Some (Printf.sprintf "ctx %d faulted: %s" c.id m)
      | None -> None)
    t.ctxs
