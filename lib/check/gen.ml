open Stallhide_isa
open Stallhide_mem
open Stallhide_workloads
open Stallhide_util

type cfg = {
  lanes : int;
  ops : int;
  ptr_nodes : int;
  data_words : int;
  max_loop : int;
  stores : bool;
  cores : int;
  scavenger_interval : int;
  policy_ix : int;
  seed : int;
}

let default_cfg =
  {
    lanes = 3;
    ops = 3;
    ptr_nodes = 24;
    data_words = 48;
    max_loop = 3;
    stores = true;
    cores = 3;
    scavenger_interval = 60;
    policy_ix = 0;
    seed = 42;
  }

type case = { cfg : cfg; program : Program.t }

(* Register convention (see the .mli). *)
let ptr_base = Reg.r0
let data_base = Reg.r1
let ptr_regs = [| Reg.r2; Reg.r3 |]
let data_regs = [| Reg.r4; Reg.r5; Reg.r6; Reg.r7 |]
let loop_counters = [| Reg.r8; Reg.r9 |]

let pick st a = a.(Random.State.int st (Array.length a))

(* --- program generation --- *)

let program cfg =
  let st = Random.State.make [| cfg.seed; 0xC4EC; cfg.lanes; cfg.ops |] in
  let b = Builder.create () in
  let budget = ref (24 * cfg.ops) in
  let spend n = budget := !budget - n in
  let word_disp st words = 8 * Random.State.int st (max 1 words) in
  let alu () =
    spend 1;
    let rd = pick st data_regs in
    match Random.State.int st 10 with
    | 0 | 1 ->
        (* div/rem: nonzero immediate only — a zero divisor traps *)
        let op = if Random.State.bool st then Instr.Div else Instr.Rem in
        Builder.binop b op rd (pick st data_regs) (Instr.Imm (1 + Random.State.int st 7))
    | 2 | 3 ->
        let op = if Random.State.bool st then Instr.Shl else Instr.Shr in
        Builder.binop b op rd (pick st data_regs) (Instr.Imm (Random.State.int st 7))
    | n ->
        let op =
          match n with
          | 4 -> Instr.Sub
          | 5 -> Instr.Mul
          | 6 -> Instr.And
          | 7 -> Instr.Or
          | 8 -> Instr.Xor
          | _ -> Instr.Add
        in
        let operand =
          if Random.State.bool st then Instr.Reg (pick st data_regs)
          else Instr.Imm (Random.State.int st 72 - 8)
        in
        Builder.binop b op rd (pick st data_regs) operand
  in
  let data_load () =
    spend 1;
    Builder.load b (pick st data_regs) data_base (word_disp st cfg.data_words)
  in
  let ptr_load () =
    spend 1;
    (* arena words hold node bases, so the chase stays in the arena *)
    let src = if Random.State.int st 3 = 0 then ptr_base else pick st ptr_regs in
    Builder.load b (pick st ptr_regs) src (word_disp st 8)
  in
  let store () =
    spend 1;
    let v = if Random.State.int st 4 = 0 then pick st ptr_regs else pick st data_regs in
    Builder.store b data_base (word_disp st cfg.data_words) v
  in
  let movi () =
    spend 1;
    Builder.movi b (pick st data_regs) (Random.State.int st 256)
  in
  let rec stmt depth =
    match Random.State.int st 16 with
    | 0 | 1 | 2 | 3 -> alu ()
    | 4 | 5 | 6 -> data_load ()
    | 7 | 8 | 9 -> ptr_load ()
    | 10 | 11 -> if cfg.stores then store () else data_load ()
    | 12 -> movi ()
    | 13 when !budget > 4 -> branch depth
    | 14 when depth < Array.length loop_counters && !budget > 6 -> loop depth
    | _ -> alu ()
  and block depth =
    let n = 1 + Random.State.int st 3 in
    for _ = 1 to n do
      stmt depth
    done
  and branch depth =
    spend 1;
    let cond = pick st [| Instr.Eq; Instr.Ne; Instr.Lt; Instr.Le; Instr.Gt; Instr.Ge |] in
    let operand =
      if Random.State.bool st then Instr.Reg (pick st data_regs)
      else Instr.Imm (Random.State.int st 5 - 2)
    in
    let skip = Builder.fresh b "skip" in
    Builder.branch b cond (pick st data_regs) operand skip;
    block depth;
    Builder.label b skip
  and loop depth =
    spend 3;
    (* counted-down loop on a reserved register the body never writes *)
    let rc = loop_counters.(depth) in
    let trips = 1 + Random.State.int st (max 1 cfg.max_loop) in
    let head = Builder.fresh b "loop" in
    Builder.movi b rc trips;
    Builder.label b head;
    block (depth + 1);
    Builder.addi b rc rc (-1);
    Builder.branch b Instr.Gt rc (Instr.Imm 0) head
  in
  for _ = 1 to cfg.ops do
    let n = 3 + Random.State.int st 5 in
    for _ = 1 to n do
      stmt 0
    done;
    Builder.opmark b
  done;
  Builder.halt b;
  Builder.assemble b

(* --- per-seed configuration sampling --- *)

let case ?(base = default_cfg) ~seed () =
  let st = Random.State.make [| seed; 0xCA5E |] in
  let cfg =
    {
      base with
      lanes = 1 + Random.State.int st 4;
      ops = 1 + Random.State.int st 4;
      ptr_nodes = 8 + (8 * Random.State.int st 7);
      data_words = 16 + (8 * Random.State.int st 12);
      max_loop = 1 + Random.State.int st 3;
      cores = 2 + Random.State.int st 3;
      scavenger_interval = 30 + Random.State.int st 90;
      policy_ix = Random.State.int st 3;
      seed;
    }
  in
  { cfg; program = program cfg }

(* --- image + lanes --- *)

let workload ?prog cfg =
  let prog = match prog with Some p -> p | None -> program cfg in
  let line = 64 in
  let bytes = (cfg.ptr_nodes * line) + (cfg.lanes * cfg.data_words * 8) + (cfg.lanes * line) + 4096 in
  let image = Address_space.create ~bytes in
  let st = Random.State.make [| cfg.seed; 0xA11; cfg.ptr_nodes |] in
  let arena = Address_space.alloc image ~bytes:(cfg.ptr_nodes * line) in
  let node i = arena + (line * i) in
  (* closure invariant: every arena word is some node's base address *)
  for w = 0 to (cfg.ptr_nodes * 8) - 1 do
    Address_space.store image (arena + (8 * w)) (node (Random.State.int st cfg.ptr_nodes))
  done;
  let lanes =
    Array.init cfg.lanes (fun _ ->
        let data = Address_space.alloc image ~bytes:(cfg.data_words * 8) in
        for w = 0 to cfg.data_words - 1 do
          Address_space.store image (data + (8 * w)) (Random.State.int st 4096)
        done;
        [
          (ptr_base, node (Random.State.int st cfg.ptr_nodes));
          (data_base, data);
          (ptr_regs.(0), node (Random.State.int st cfg.ptr_nodes));
          (ptr_regs.(1), node (Random.State.int st cfg.ptr_nodes));
          (data_regs.(0), 1 + Random.State.int st 512);
          (data_regs.(1), 1 + Random.State.int st 512);
          (data_regs.(2), 1 + Random.State.int st 512);
          (data_regs.(3), 1 + Random.State.int st 512);
        ])
  in
  {
    Workload.name = Printf.sprintf "check-gen-%d" cfg.seed;
    program = prog;
    image;
    lanes;
    ops_per_lane = cfg.ops;
    reset = Workload.no_reset;
  }

(* --- cfg <-> json (repro files) --- *)

let cfg_to_json cfg =
  Json.Obj
    [
      ("lanes", Json.Int cfg.lanes);
      ("ops", Json.Int cfg.ops);
      ("ptr_nodes", Json.Int cfg.ptr_nodes);
      ("data_words", Json.Int cfg.data_words);
      ("max_loop", Json.Int cfg.max_loop);
      ("stores", Json.Bool cfg.stores);
      ("cores", Json.Int cfg.cores);
      ("scavenger_interval", Json.Int cfg.scavenger_interval);
      ("policy_ix", Json.Int cfg.policy_ix);
      ("seed", Json.Int cfg.seed);
    ]

let cfg_of_json j =
  let int name =
    match Option.bind (Json.member name j) Json.to_int_opt with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Gen.cfg_of_json: missing int field %S" name)
  in
  let bool name =
    match Json.member name j with
    | Some (Json.Bool b) -> b
    | _ -> invalid_arg (Printf.sprintf "Gen.cfg_of_json: missing bool field %S" name)
  in
  {
    lanes = int "lanes";
    ops = int "ops";
    ptr_nodes = int "ptr_nodes";
    data_words = int "data_words";
    max_loop = int "max_loop";
    stores = bool "stores";
    cores = int "cores";
    scavenger_interval = int "scavenger_interval";
    policy_ix = int "policy_ix";
    seed = int "seed";
  }
