open Stallhide_isa

let instruction_count items =
  List.length (List.filter (function Program.Ins _ -> true | Program.Label _ -> false) items)

let drop_range items ~at ~len =
  List.filteri (fun j _ -> j < at || j >= at + len) items

(* ddmin-lite: try deleting [chunk]-sized windows; on success restart at
   the shrunken list, otherwise halve the chunk. Terminates because the
   list length strictly decreases or the chunk does. *)
let rec delete_pass ~test items chunk =
  if chunk < 1 then items
  else begin
    let n = List.length items in
    let rec scan at =
      if at >= n then None
      else
        let cand = drop_range items ~at ~len:chunk in
        if cand <> [] && test cand then Some cand else scan (at + chunk)
    in
    match scan 0 with
    | Some cand -> delete_pass ~test cand (min chunk (List.length cand))
    | None -> delete_pass ~test items (chunk / 2)
  end

(* Candidate simpler replacements for one instruction, simplest first. *)
let simpler = function
  | Instr.Mov (rd, Instr.Imm k) when k <> 0 && k <> 1 ->
      [ Instr.Mov (rd, Instr.Imm 0); Instr.Mov (rd, Instr.Imm 1) ]
  | Instr.Mov (rd, Instr.Reg _) -> [ Instr.Mov (rd, Instr.Imm 0) ]
  | Instr.Load (rd, rs, d) when d <> 0 -> [ Instr.Load (rd, rs, 0) ]
  | Instr.Store (rs, d, rv) when d <> 0 -> [ Instr.Store (rs, 0, rv) ]
  | Instr.Prefetch (rs, d) when d <> 0 -> [ Instr.Prefetch (rs, 0) ]
  | Instr.Binop (op, rd, rs, Instr.Imm k) when k <> 0 && k <> 1 ->
      [ Instr.Binop (op, rd, rs, Instr.Imm 1) ]
  | Instr.Binop (op, rd, rs, Instr.Reg _) -> [ Instr.Binop (op, rd, rs, Instr.Imm 1) ]
  | _ -> []

let replace items ~at ins =
  List.mapi (fun j item -> if j = at then Program.Ins ins else item) items

let simplify_pass ~test items =
  let changed = ref true in
  let items = ref items in
  while !changed do
    changed := false;
    let arr = Array.of_list !items in
    Array.iteri
      (fun at item ->
        match item with
        | Program.Label _ -> ()
        | Program.Ins ins ->
            List.iter
              (fun cand ->
                if (not !changed) && cand <> ins then begin
                  let cand_items = replace !items ~at cand in
                  if test cand_items then begin
                    items := cand_items;
                    changed := true
                  end
                end)
              (simpler ins))
      arr
  done;
  !items

let minimize ~test items =
  let items = delete_pass ~test items (max 1 (List.length items / 2)) in
  let items = simplify_pass ~test items in
  (* operand simplification can unlock further deletions (a loop shrunk
     to one trip lets its counter bookkeeping go) — one more round *)
  delete_pass ~test items (max 1 (List.length items / 2))
