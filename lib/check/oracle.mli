(** End-to-end semantic oracles for the instrumentation passes.

    Each oracle runs a generated case through two (or more) execution
    arms that the paper claims are semantically equivalent, and
    compares full architectural state ({!State}). Every oracle also
    checks the metamorphic invariants on the way: the reference arm is
    run twice and must be bit-identical (equal seeds ⇒ equal cycles and
    state), and no arm of a verifier-clean program may trap.

    - [Primary] — uninstrumented sequential vs {!Primary_pass}
      prefetch+yield instrumented under round-robin interleaving;
    - [Scavenger] — uninstrumented sequential vs scavenger-pass
      conditional yields executed in scavenger mode under round-robin;
    - [Smp] — instrumented lanes served as requests on a 1-core vs an
      N-core {!Stallhide_smp.Machine} (sharded dispatch, shared L3,
      scavenger co-runners on core 0 so stealing can fire);
    - [Fault] — instrumented round-robin, clean vs under an injected
      L3/DRAM latency spike and vs rogue scavenger co-runners: state
      must be preserved and a spike may only {e degrade} timing;
    - [Cluster] — the instrumented lanes served through an M-machine
      {!Stallhide_cluster.Cluster} (consistent hashing, pristine link,
      d-FCFS, steal off) vs M independent machines each running its key
      range standalone: per-machine state must be bit-identical, and
      (metamorphic) enabling retries + immediate hedging under zero
      faults changes no request payload and only ever {e adds} work —
      no machine serves fewer attempts and the wire carries no fewer
      messages. Time is deliberately not the invariant: hedges race
      the last ack down and can even warm the shared L3 under the
      co-resident attempts, both of which legitimately shrink cycle
      counts (the fuzzer found both);
    - [Soundness] — the static must/may cache analysis
      ({!Stallhide_analysis}) vs simulator ground truth under a
      per-case sampled {!Stallhide_mem.Memconfig}: an [Always_hit]
      load may never record a miss (multi-lane run), an [Always_miss]
      load must miss on every execution (1-lane cold-start run), and
      classification must be deterministic;
    - [Txn] — the {!Stallhide_txn} transaction engine: K in-flight
      multi-key transactions interleaved round-robin vs a sequential
      replay of the same committed schedule (lane order = commit
      sequence, fresh image). Strict sorted-order per-key latching
      serializes conflicting transactions in commit order, so the
      replay must be bit-identical on committed state (the
      schedule-dependent stats line is masked); the interleaved run
      itself is also replayed for the determinism metamorphic, and the
      committed sequence numbers must form a permutation. The case's
      generated program supplies entropy only through [cfg] — the arms
      run the engine's own program;
    - [Mutant] — a deliberately broken pass (clobbers every load's
      destination register, the classic missed-context-restore bug).
      It must always fail; it exists to prove the oracles can see
      miscompiles and to demo the shrinker, and is therefore excluded
      from {!all}. *)

open Stallhide_isa

type name = Primary | Scavenger | Smp | Fault | Soundness | Cluster | Txn | Mutant

(** The seven real oracles — the default fuzz campaign. *)
val all : name list

val to_string : name -> string

val of_string : string -> name option

type verdict =
  | Pass
  | Counterexample of string  (** semantic divergence — a real finding *)
  | Invalid of string
      (** the case could not be evaluated (assembly failure or budget
          exhaustion) — distinct from [Counterexample] so the shrinker
          never "minimizes" a miscompile into an infinite loop *)

val verdict_to_string : verdict -> string

(** [check name cfg prog] runs the oracle on [prog] in the environment
    described by [cfg] (fresh image per arm). [prog] is explicit so the
    shrinker and repro replay can substitute a reduced program. *)
val check : name -> Gen.cfg -> Program.t -> verdict

val check_case : name -> Gen.case -> verdict

(** The [Mutant] oracle's miscompile: inserts [mov rd, 0] after every
    load (destroying the loaded value), exposed so tests can build the
    broken binary directly. *)
val clobber_loads : Program.t -> Program.t
