(** Greedy counterexample minimization over assembler item lists.

    [minimize ~test items] assumes [test items = true] ("still fails")
    and returns a locally minimal sublist that still satisfies [test].
    [test] must treat candidates it cannot evaluate (unassemblable
    programs, budget blow-ups) as [false] — the shrinker itself knows
    nothing about validity.

    Strategy, in order, to a fixpoint:
    + ddmin-style chunk deletion (halving chunk sizes down to single
      items), which also sheds labels whose branches went with them;
    + per-instruction operand simplification (immediates toward 0/1,
      displacements toward 0) — this is what turns a 3-trip loop into a
      1-trip one.

    Deterministic: same input and test, same output. *)

open Stallhide_isa

val minimize : test:(Program.item list -> bool) -> Program.item list -> Program.item list

(** Instructions in the list ([Label]s excluded) — the size the
    acceptance bound ("shrinks to <= 5 instructions") is measured in. *)
val instruction_count : Program.item list -> int
