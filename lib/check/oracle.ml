open Stallhide_isa
open Stallhide_cpu
open Stallhide_mem
open Stallhide_runtime
open Stallhide_workloads
open Stallhide_binopt
open Stallhide
open Stallhide_verify
open Stallhide_sched
open Stallhide_smp
open Stallhide_faults

type name = Primary | Scavenger | Smp | Fault | Soundness | Cluster | Txn | Mutant

let all = [ Primary; Scavenger; Smp; Fault; Soundness; Cluster; Txn ]

let to_string = function
  | Primary -> "primary"
  | Scavenger -> "scavenger"
  | Smp -> "smp"
  | Fault -> "fault"
  | Soundness -> "soundness"
  | Cluster -> "cluster"
  | Txn -> "txn"
  | Mutant -> "mutant"

let of_string = function
  | "primary" -> Some Primary
  | "scavenger" -> Some Scavenger
  | "smp" -> Some Smp
  | "fault" -> Some Fault
  | "soundness" -> Some Soundness
  | "cluster" -> Some Cluster
  | "txn" -> Some Txn
  | "mutant" -> Some Mutant
  | _ -> None

type verdict = Pass | Counterexample of string | Invalid of string

let verdict_to_string = function
  | Pass -> "pass"
  | Counterexample m -> "counterexample: " ^ m
  | Invalid m -> "invalid: " ^ m

exception Cex of string
exception Inv of string

let budget = 4_000_000

(* Synthetic estimates: every load looks miss-prone, so the primary
   pass instruments densely (policy permitting) without needing a
   profiling run per fuzz case. Semantics must hold for *any*
   estimates, so constants are as good an adversary as a profile. *)
let estimates =
  {
    Gain_cost.miss_probability = (fun _ -> Some 0.9);
    stall_per_miss = (fun _ -> Some 160.0);
  }

let policy_of_ix = function
  | 0 -> Gain_cost.Always
  | 1 -> Gain_cost.Cost_benefit
  | _ -> Gain_cost.Threshold 0.3

type arm = { state : State.t; cycles : int }

(* A fault in an *instrumented* arm is a counterexample (the rewrite
   introduced a trap); a fault in the uninstrumented reference means
   the case itself is malformed (e.g. a shrink candidate that lost its
   [halt]), which must read as Invalid or the shrinker could "minimize"
   a miscompile into a program that merely runs off the end. *)
let finish ?(fault_is_invalid = false) label (r : Scheduler.result) ~mem ctxs total =
  (match r.Scheduler.faults with
  | m :: _ ->
      let msg = Printf.sprintf "%s: context faulted: %s" label m in
      raise (if fault_is_invalid then Inv msg else Cex msg)
  | [] -> ());
  if r.Scheduler.completed < total then
    raise
      (Inv
         (Printf.sprintf "%s: %d/%d contexts completed within %d cycles" label
            r.Scheduler.completed total budget));
  { state = State.capture ~mem ctxs; cycles = r.Scheduler.cycles }

(* Every arm rebuilds its workload from the cfg — runs mutate the image. *)
let run_seq ?fault_is_invalid label cfg prog =
  let wl = Gen.workload ~prog cfg in
  let ctxs = Workload.contexts ~mode:Context.Primary wl in
  let hier = Hierarchy.create Memconfig.default in
  let r = Scheduler.run_sequential ~max_cycles:budget hier wl.Workload.image ctxs in
  finish ?fault_is_invalid label r ~mem:wl.Workload.image ctxs (Array.length ctxs)

(* The uninstrumented sequential reference of the differential pairs. *)
let reference cfg prog = run_seq ~fault_is_invalid:true "reference" cfg prog

let run_rr label ?(mode = Context.Primary) ?prepare ?extra cfg prog =
  let wl = Gen.workload ~prog cfg in
  let ctxs = Workload.contexts ~mode wl in
  let extras = match extra with Some f -> f wl | None -> [||] in
  let hier = Hierarchy.create Memconfig.default in
  (match prepare with Some f -> f hier | None -> ());
  let r =
    Scheduler.run_round_robin ~max_cycles:budget ~switch:Switch_cost.coroutine hier
      wl.Workload.image
      (Array.append ctxs extras)
  in
  (* capture covers the lanes only: co-runners are timing noise *)
  finish label r ~mem:wl.Workload.image ctxs (Array.length ctxs + Array.length extras)

(* Metamorphic invariant: equal seeds are bit-identical (state *and*
   clock), so every oracle runs its reference arm twice. *)
let deterministic label run =
  let a = run () in
  let b = run () in
  if a.cycles <> b.cycles then
    raise
      (Cex
         (Printf.sprintf "%s: nondeterministic cycles under equal seeds (%d vs %d)" label
            a.cycles b.cycles));
  (match State.diff a.state b.state with
  | Some d ->
      raise (Cex (Printf.sprintf "%s: nondeterministic state under equal seeds: %s" label d))
  | None -> ());
  a

let expect_equal ~ref_arm ~label arm =
  match State.diff ref_arm.state arm.state with
  | Some d -> raise (Cex (Printf.sprintf "%s diverges from reference: %s" label d))
  | None -> ()

let instrument_primary ?scavenger_interval cfg prog =
  let primary =
    { Primary_pass.default_opts with policy = policy_of_ix cfg.Gen.policy_ix }
  in
  try Pipeline.instrument_with ~estimates ~primary ?scavenger_interval prog
  with Verify.Rejected outcome ->
    raise
      (Cex
         (Printf.sprintf "verifier rejected instrumented rewrite (%d errors)"
            (Verify.errors outcome)))

(* --- oracles --- *)

let check_primary cfg prog =
  let ref_arm = deterministic "reference" (fun () -> reference cfg prog) in
  let inst = instrument_primary cfg prog in
  let arm = run_rr "instrumented" cfg inst.Pipeline.program in
  expect_equal ~ref_arm ~label:"primary-instrumented round-robin" arm

let check_scavenger cfg prog =
  let ref_arm = deterministic "reference" (fun () -> reference cfg prog) in
  let opts =
    { Scavenger_pass.default_opts with target_interval = cfg.Gen.scavenger_interval }
  in
  let prog', orig_of_new, _report = Scavenger_pass.run opts prog in
  let outcome =
    Verify.validate ~orig:prog ~orig_of_new ~target_interval:cfg.Gen.scavenger_interval
      prog'
  in
  if not (Verify.ok outcome) then
    raise
      (Cex
         (Printf.sprintf "verifier rejected scavenger rewrite (%d errors)"
            (Verify.errors outcome)));
  let arm = run_rr "scavenger" ~mode:Context.Scavenger cfg prog' in
  expect_equal ~ref_arm ~label:"scavenger-instrumented round-robin" arm

(* One SMP arm: the instrumented lanes served as requests. Scavenger
   co-runners (store-free by construction) are seeded into core 0 so
   work stealing has something to move; they are excluded from the
   capture and cannot touch lane state. *)
let smp_arm label cfg prog ~cores =
  let wl = Gen.workload ~prog cfg in
  let policy = if cfg.Gen.policy_ix mod 2 = 0 then Dispatch.D_fcfs else Dispatch.Jbsq in
  let lanes = Array.length wl.Workload.lanes in
  let requests =
    List.init lanes (fun i ->
        let key = (7 * i) + 3 in
        let ctx = Workload.context wl ~lane:i ~id:i ~mode:Context.Primary in
        Machine.request ~rid:i ~key ~home:(Dispatch.home ~shards:cores key)
          ~arrival:(i * 50) ctx)
  in
  let scav_cfg = { cfg with Gen.stores = false; seed = cfg.Gen.seed + 17; ops = 1 } in
  let scav_prog = Gen.program scav_cfg in
  let scavs =
    List.init 2 (fun k ->
        let ctx = Context.create ~id:(1000 + k) ~mode:Context.Scavenger scav_prog in
        Context.set_regs ctx wl.Workload.lanes.(0);
        ctx)
  in
  let scavengers = Array.init cores (fun i -> if i = 0 then scavs else []) in
  let config = { Machine.default_config with cores; max_cycles = budget } in
  let r = Machine.run ~config ~policy ~mem:wl.Workload.image ~requests ~scavengers () in
  if r.Machine.faulted > 0 then
    raise (Cex (Printf.sprintf "%s: %d request(s) faulted" label r.Machine.faulted));
  if r.Machine.completed < lanes then
    raise
      (Inv
         (Printf.sprintf "%s: %d/%d requests completed within %d cycles" label
            r.Machine.completed lanes budget));
  let ctxs = Array.of_list (List.map (fun (rq : Machine.request) -> rq.Machine.ctx) requests) in
  { state = State.capture ~mem:wl.Workload.image ctxs; cycles = r.Machine.cycles }

let check_smp cfg prog =
  (* validity gate: the program must halt cleanly uninstrumented, else
     the case (e.g. a shrink candidate that lost its [halt]) is Invalid *)
  ignore (reference cfg prog);
  let inst = instrument_primary cfg prog in
  let prog' = inst.Pipeline.program in
  let ref_arm =
    deterministic "1-core machine" (fun () -> smp_arm "1-core machine" cfg prog' ~cores:1)
  in
  let arm = smp_arm "N-core machine" cfg prog' ~cores:cfg.Gen.cores in
  expect_equal ~ref_arm
    ~label:(Printf.sprintf "%d-core machine" cfg.Gen.cores)
    arm

let check_fault cfg prog =
  (* validity gate, as in [check_smp] *)
  ignore (reference cfg prog);
  let inst = instrument_primary ~scavenger_interval:cfg.Gen.scavenger_interval cfg prog in
  let prog' = inst.Pipeline.program in
  let clean = deterministic "clean" (fun () -> run_rr "clean" cfg prog') in
  let spike =
    Faults.Spike
      {
        at = 200;
        duration = 2_000 + (500 * (cfg.Gen.seed mod 5));
        l3_mult = 4;
        dram_mult = 8;
      }
  in
  let spiked = run_rr "spiked" ~prepare:(Faults.prepare_hier spike) cfg prog' in
  expect_equal ~ref_arm:clean ~label:"latency-spiked run" spiked;
  if spiked.cycles < clean.cycles then
    raise
      (Cex
         (Printf.sprintf
            "latency spike sped the run up (%d cycles spiked vs %d clean) — timing may \
             only degrade"
            spiked.cycles clean.cycles));
  let rogue_prog = Faults.rogue_program ~bursts:3 ~compute:400 () in
  let rogues _wl =
    Array.init 2 (fun k -> Context.create ~id:(900 + k) ~mode:Context.Scavenger rogue_prog)
  in
  let rogue_arm = run_rr "rogue" ~extra:rogues cfg prog' in
  expect_equal ~ref_arm:clean ~label:"rogue-scavenger run" rogue_arm

(* --- static-analysis soundness vs simulator ground truth --- *)

(* A small validated family of hierarchies, drawn per case, so the
   must/may transfer rules are exercised across line sizes,
   associativities and capacities — not just the default geometry. *)
let mem_samples =
  let lvl size_bytes ways latency = { Memconfig.size_bytes; ways; latency } in
  let d = Memconfig.default in
  [
    d;
    (* tiny low-associativity caches: conflict evictions dominate *)
    { d with Memconfig.l1 = lvl 512 2 2; l2 = lvl 4096 4 9 };
    (* wide lines: more accesses share an abstract key *)
    { d with Memconfig.line_bytes = 128 };
    (* direct-mapped L1: age bound = 0, evict-on-any-other-key *)
    { d with Memconfig.l1 = lvl 1024 1 4 };
    (* slow memory + pricier prefetch issue *)
    { d with Memconfig.dram_latency = 400; prefetch_issue_cost = 3 };
  ]

let sample_mem seed =
  let m = List.nth mem_samples (abs seed mod List.length mem_samples) in
  Memconfig.validate m;
  m

(* The analysis's two hard claims, checked against full-trace per-load
   statistics from the simulator ([Pipeline.ground_truth], where a miss
   is a load served beyond L2):

   - [Always_hit] loads may never record a miss, in the full multi-lane
     sequential run — the claim is path-universal, so any interleaving
     of lanes through one hierarchy must respect it;
   - [Always_miss] loads must miss on {e every} execution, checked on a
     1-lane run: the proof is cold-start first-touch, and with several
     lanes an earlier lane's touch legitimately warms the line for a
     later one. *)
let check_soundness cfg prog =
  (* validity gate, as in [check_smp]: faulting cases are Invalid *)
  ignore (reference cfg prog);
  let mem = sample_mem cfg.Gen.seed in
  let module A = Stallhide_analysis.Analysis in
  let analysis = A.run ~mem prog in
  (* metamorphic: classification is a pure function of (mem, prog) *)
  let again = A.run ~mem prog in
  List.iter2
    (fun (s : A.site) (s' : A.site) ->
      if s.A.cls <> s'.A.cls then
        raise
          (Cex
             (Printf.sprintf "soundness: nondeterministic classification at pc %d (%s vs %s)"
                s.A.pc
                (Stallhide_analysis.Cache_domain.cls_name s.A.cls)
                (Stallhide_analysis.Cache_domain.cls_name s'.A.cls))))
    analysis.A.sites again.A.sites;
  let gt lanes =
    Pipeline.ground_truth ~mem_cfg:mem (Gen.workload ~prog { cfg with Gen.lanes })
  in
  let multi = gt cfg.Gen.lanes in
  List.iter
    (fun (s : A.site) ->
      match s.A.cls with
      | Stallhide_analysis.Cache_domain.Always_hit -> (
          match Hashtbl.find_opt multi s.A.pc with
          | Some (execs, misses, _) when misses > 0 ->
              raise
                (Cex
                   (Printf.sprintf
                      "soundness: Always_hit load at pc %d missed %d of %d execution(s)"
                      s.A.pc misses execs))
          | _ -> ())
      | _ -> ())
    (A.load_sites analysis);
  let single = gt 1 in
  List.iter
    (fun pc ->
      match Hashtbl.find_opt single pc with
      | Some (execs, misses, _) when misses < execs ->
          raise
            (Cex
               (Printf.sprintf
                  "soundness: Always_miss load at pc %d hit %d of %d execution(s) (1-lane)"
                  pc (execs - misses) execs))
      | _ -> ())
    (A.always_miss_pcs analysis)

(* --- cluster: M machines behind the LB vs M independent machines --- *)

module Cl = Stallhide_cluster.Cluster
module Lb = Stallhide_cluster.Lb
module Defense = Stallhide_cluster.Defense
module Netconfig = Stallhide_net.Netconfig

let cluster_req_key i = (7 * i) + 3

(* One cluster arm over the instrumented lanes-as-requests: d-FCFS,
   steal off, consistent hashing and a pristine link, so the fault-free
   dispatch sequence on each machine is exactly the independent
   reference's, and hedge/retry traffic (which lands on *other*
   machines by the distinct-machine rule) cannot perturb it. *)
let cluster_arm label cfg prog' ~machines ~defense =
  let probe = Gen.workload ~prog:prog' cfg in
  let lanes = Array.length probe.Workload.lanes in
  let requests =
    List.init lanes (fun i -> { Cl.rid = i; key = cluster_req_key i; send = i * 50 })
  in
  let images = Hashtbl.create machines in
  let node ~machine ~restart:_ =
    let wl = Gen.workload ~prog:prog' cfg in
    Hashtbl.replace images machine wl.Workload.image;
    {
      Cl.config =
        { Machine.default_config with cores = cfg.Gen.cores; steal = false; max_cycles = budget };
      mem = wl.Workload.image;
      scavengers = Array.make cfg.Gen.cores [];
      make_ctx =
        (fun ~rid ~attempt:_ -> Workload.context wl ~lane:rid ~id:rid ~mode:Context.Primary);
    }
  in
  let config =
    {
      Cl.machines;
      policy = Dispatch.D_fcfs;
      lb = Lb.Consistent_hash;
      net = Netconfig.default;
      defense;
      slo_deadline = budget;
      seed = cfg.Gen.seed;
      faults = [];
      horizon = budget;
    }
  in
  let r = Cl.run config ~node ~requests in
  if r.Cl.lost_acked > 0 then
    raise (Cex (Printf.sprintf "%s: %d acked request(s) with no finished context" label r.Cl.lost_acked));
  if r.Cl.acked < lanes then
    raise
      (Inv
         (Printf.sprintf "%s: %d/%d requests acked within %d cycles" label r.Cl.acked lanes
            budget));
  (r, images)

(* Machine [m]'s view of a cluster run: its final image plus the lane
   contexts of the requests it won. *)
let cluster_state (r, images) m =
  let ctxs =
    Array.to_list r.Cl.requests
    |> List.filter_map (fun (q : Cl.rq) -> if q.Cl.winner = m then q.Cl.winner_ctx else None)
    |> Array.of_list
  in
  State.capture ~mem:(Hashtbl.find images m) ctxs

(* The reference: machine [m] run standalone on the key range the
   consistent-hash ring homes to it. *)
let independent_arm cfg prog' ~machines m =
  let wl = Gen.workload ~prog:prog' cfg in
  let lanes = Array.length wl.Workload.lanes in
  let requests =
    List.init lanes (fun i -> (i, cluster_req_key i))
    |> List.filter (fun (_, key) -> Dispatch.home ~shards:machines key = m)
    |> List.map (fun (i, key) ->
           let ctx = Workload.context wl ~lane:i ~id:i ~mode:Context.Primary in
           Machine.request ~rid:i ~key
             ~home:(Dispatch.home ~shards:cfg.Gen.cores key)
             ~arrival:(i * 50) ctx)
  in
  let config =
    { Machine.default_config with cores = cfg.Gen.cores; steal = false; max_cycles = budget }
  in
  let r =
    Machine.run ~config ~policy:Dispatch.D_fcfs ~mem:wl.Workload.image ~requests
      ~scavengers:(Array.make cfg.Gen.cores []) ()
  in
  if r.Machine.faulted > 0 then
    raise (Cex (Printf.sprintf "independent machine %d: %d request(s) faulted" m r.Machine.faulted));
  if r.Machine.completed < List.length requests then
    raise
      (Inv
         (Printf.sprintf "independent machine %d: %d/%d requests completed within %d cycles" m
            r.Machine.completed (List.length requests) budget));
  State.capture ~mem:wl.Workload.image
    (Array.of_list (List.map (fun (rq : Machine.request) -> rq.Machine.ctx) requests))

let check_cluster cfg prog =
  (* validity gate, as in [check_smp] *)
  ignore (reference cfg prog);
  let inst = instrument_primary cfg prog in
  let prog' = inst.Pipeline.program in
  let machines = 2 + (abs cfg.Gen.seed mod 2) in
  (* metamorphic: same seed, bit-identical cluster (every machine) *)
  let a = cluster_arm "fault-free cluster" cfg prog' ~machines ~defense:None in
  let b = cluster_arm "fault-free cluster (replay)" cfg prog' ~machines ~defense:None in
  if (fst a).Cl.cycles <> (fst b).Cl.cycles then
    raise
      (Cex
         (Printf.sprintf "cluster: nondeterministic cycles under equal seeds (%d vs %d)"
            (fst a).Cl.cycles (fst b).Cl.cycles));
  for m = 0 to machines - 1 do
    match State.diff (cluster_state a m) (cluster_state b m) with
    | Some d ->
        raise (Cex (Printf.sprintf "cluster: nondeterministic state on machine %d: %s" m d))
    | None -> ()
  done;
  (* differential: each machine bit-identical to its standalone twin *)
  for m = 0 to machines - 1 do
    let ref_state = independent_arm cfg prog' ~machines m in
    match State.diff ref_state (cluster_state a m) with
    | Some d ->
        raise
          (Cex
             (Printf.sprintf "cluster machine %d diverges from its independent twin: %s" m d))
    | None -> ()
  done;
  (* metamorphic: retries + immediate hedging under zero faults change
     no payloads and never shrink the makespan *)
  let aggressive =
    {
      Defense.deadline = budget;
      timeout = 3_000;
      max_retries = 2;
      retry_budget_pct = 100;
      backoff = 100;
      hedge_after = 1;
      hedge_max = 1;
      probe_interval = 1_000;
      strike_threshold = 3;
      brownout_depth = 0;
    }
  in
  let h, _ = cluster_arm "hedged cluster" cfg prog' ~machines ~defense:(Some aggressive) in
  (* Hedging may shrink cycle counts — duplicates race the last ack
     down and even warm the shared L3 under the co-resident attempts
     (the fuzzer found both) — so time is not an invariant here. Work
     is: every machine still serves at least its fault-free attempts,
     and the wire carries at least the fault-free messages. *)
  Array.iter2
    (fun (v : Cl.node_view) (vh : Cl.node_view) ->
      if vh.Cl.completed < v.Cl.completed || vh.Cl.nic_rx < v.Cl.nic_rx then
        raise
          (Cex
             (Printf.sprintf
                "hedging under zero faults shed machine %d's work (%d vs %d contexts, %d vs \
                 %d rx) — duplicates may only add work"
                v.Cl.id vh.Cl.completed v.Cl.completed vh.Cl.nic_rx v.Cl.nic_rx)))
    (fst a).Cl.nodes h.Cl.nodes;
  let sent (r : Cl.result) = try List.assoc "net.sent" r.Cl.counters with Not_found -> 0 in
  if sent h < sent (fst a) then
    raise
      (Cex
         (Printf.sprintf "hedging under zero faults removed messages (%d vs %d sent)"
            (sent h) (sent (fst a))));
  Array.iter2
    (fun (q : Cl.rq) (qh : Cl.rq) ->
      match (q.Cl.winner_ctx, qh.Cl.winner_ctx) with
      | Some c, Some ch ->
          if ch.Context.status <> Context.Done then
            raise (Cex (Printf.sprintf "hedged winner of rid %d did not finish" q.Cl.spec.Cl.rid));
          if c.Context.regs <> ch.Context.regs then
            raise
              (Cex
                 (Printf.sprintf
                    "hedging changed the payload of rid %d (winner machine %d vs %d)"
                    q.Cl.spec.Cl.rid q.Cl.winner qh.Cl.winner))
      | _ -> raise (Cex "hedged cluster lost a winner context"))
    (fst a).Cl.requests h.Cl.requests

(* --- txn: interleaved transactions vs a sequential replay of the
   committed schedule --- *)

module Txn_oltp = Stallhide_txn.Txn_oltp

(* The engine's serializability claim: strict per-key latching in
   sorted order (all latches held before any data access, released at
   commit) serializes conflicting transactions in commit order, so
   replaying the lanes sequentially in their committed sequence must
   reproduce the interleaved run's architectural state bit for bit.
   The case's generated program supplies entropy only through [cfg];
   the arms run the engine's own multi-key transaction program. *)
let txn_build (cfg : Gen.cfg) =
  let inflight = 2 + (abs cfg.Gen.lanes mod 4) in
  let batch = 2 + (abs cfg.Gen.ops mod 3) in
  let mix = 50 * (abs cfg.Gen.policy_ix mod 3) in
  let keys = 16 + (8 * cfg.Gen.cores) in
  Txn_oltp.make ~manual:true ~lanes:inflight ~txns:1 ~batch ~mix ~keys ~theta:0.9
    ~seed:cfg.Gen.seed ()

(* The stats line (aborts, latch waits) is the one deliberately
   schedule-dependent region; zero it before capture so the arms
   compare committed state only. *)
let txn_finish label (r : Scheduler.result) wl (lay : Txn_oltp.layout) ctxs =
  (match r.Scheduler.faults with
  | m :: _ -> raise (Cex (Printf.sprintf "%s: context faulted: %s" label m))
  | [] -> ());
  if r.Scheduler.completed < Array.length ctxs then
    raise
      (Inv
         (Printf.sprintf "%s: %d/%d transactions completed within %d cycles" label
            r.Scheduler.completed (Array.length ctxs) budget));
  let image = wl.Workload.image in
  Address_space.store image lay.Txn_oltp.stats 0;
  Address_space.store image (lay.Txn_oltp.stats + 8) 0;
  { state = State.capture ~mem:image ctxs; cycles = r.Scheduler.cycles }

let check_txn cfg prog =
  (* validity gate, as in [check_smp]: the oracle runs its own
     transaction program, but a generated/shrunk case that does not
     halt cleanly must still read as Invalid, not pass *)
  ignore (reference cfg prog);
  let interleaved () =
    let wl, lay = txn_build cfg in
    let ctxs = Workload.contexts ~mode:Context.Primary wl in
    let hier = Hierarchy.create Memconfig.default in
    let r =
      Scheduler.run_round_robin ~max_cycles:budget ~switch:Switch_cost.coroutine hier
        wl.Workload.image ctxs
    in
    (txn_finish "interleaved" r wl lay ctxs, wl, lay)
  in
  (* metamorphic: equal seeds are bit-identical (state and clock) *)
  let a, wl_a, lay_a = interleaved () in
  let b, _, _ = interleaved () in
  if a.cycles <> b.cycles then
    raise
      (Cex
         (Printf.sprintf "txn: nondeterministic cycles under equal seeds (%d vs %d)" a.cycles
            b.cycles));
  (match State.diff a.state b.state with
  | Some d -> raise (Cex (Printf.sprintf "txn: nondeterministic state under equal seeds: %s" d))
  | None -> ());
  (* the committed schedule: one commit sequence number per lane *)
  let lanes = Array.length lay_a.Txn_oltp.record_base in
  let seq_of_lane =
    Array.map (fun base -> Address_space.load wl_a.Workload.image base) lay_a.Txn_oltp.record_base
  in
  let seen = Array.make lanes false in
  Array.iteri
    (fun lane s ->
      if s < 0 || s >= lanes || seen.(s) then
        raise
          (Cex
             (Printf.sprintf "txn: commit sequence is not a permutation (lane %d committed %d)"
                lane s));
      seen.(s) <- true)
    seq_of_lane;
  let order = Array.make lanes 0 in
  Array.iteri (fun lane s -> order.(s) <- lane) seq_of_lane;
  (* differential: sequential replay of that schedule on a fresh image *)
  let wl, lay = txn_build cfg in
  let ctxs =
    Array.map (fun lane -> Workload.context wl ~lane ~id:lane ~mode:Context.Primary) order
  in
  let hier = Hierarchy.create Memconfig.default in
  let r = Scheduler.run_sequential ~max_cycles:budget hier wl.Workload.image ctxs in
  let replay = txn_finish "sequential replay" r wl lay ctxs in
  match State.diff replay.state a.state with
  | Some d ->
      raise
        (Cex
           (Printf.sprintf
              "interleaved transactions diverge from the sequential replay of their \
               committed schedule: %s"
              d))
  | None -> ()

let clobber_loads prog =
  Program.to_items prog
  |> List.concat_map (fun item ->
         match item with
         | Program.Ins (Instr.Load (rd, _, _)) ->
             [ item; Program.Ins (Instr.Mov (rd, Instr.Imm 0)) ]
         | _ -> [ item ])
  |> Program.assemble

let check_mutant cfg prog =
  let ref_arm = reference cfg prog in
  let mutant = clobber_loads prog in
  let arm = run_seq "mutant" cfg mutant in
  expect_equal ~ref_arm ~label:"load-clobbering mutant" arm

let check name cfg prog =
  let f =
    match name with
    | Primary -> check_primary
    | Scavenger -> check_scavenger
    | Smp -> check_smp
    | Fault -> check_fault
    | Soundness -> check_soundness
    | Cluster -> check_cluster
    | Txn -> check_txn
    | Mutant -> check_mutant
  in
  match f cfg prog with
  | () -> Pass
  | exception Cex m -> Counterexample m
  | exception Inv m -> Invalid m
  | exception Program.Error m -> Invalid ("assembly failed: " ^ m)

let check_case name (c : Gen.case) = check name c.Gen.cfg c.Gen.program
