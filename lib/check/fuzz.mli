(** The fuzz campaign driver behind [stallhide fuzz].

    Draws [cases] configurations+programs from consecutive seeds
    ([seed], [seed+1], ...), runs every requested oracle on each, and
    collects counterexamples. Each counterexample is greedily shrunken
    (unless disabled) with the failing oracle itself as the shrinker's
    test, and optionally saved as a replayable {!Repro} file.

    Everything is a pure function of [opts] — a CI fuzz job with a
    fixed seed is a regression test, not a lottery ticket. *)

type opts = {
  cases : int;
  seed : int;  (** first seed; case [i] uses [seed + i] *)
  oracles : Oracle.name list;
  shrink : bool;
  repro_dir : string option;
}

(** 100 cases, seed 42, {!Oracle.all}, shrinking on, no repro dir. *)
val default_opts : opts

type counterexample = {
  oracle : Oracle.name;
  case_seed : int;
  detail : string;  (** the (post-shrink) oracle diagnostic *)
  instructions : int;  (** original program size *)
  shrunk_instructions : int option;  (** [None] when shrinking is off *)
  program_text : string;  (** the minimal failing program *)
  repro_path : string option;
}

type report = {
  cases : int;
  oracles : Oracle.name list;
  checks : int;  (** oracle runs executed (cases x oracles) *)
  counterexamples : counterexample list;
  invalid : (Oracle.name * int * string) list;
      (** (oracle, case seed, why) for cases that could not be
          evaluated — always a finding worth looking at, never hidden *)
}

val ok : report -> bool

(** [run ?progress opts] executes the campaign; [progress] is called
    after each case with the number of cases finished. *)
val run : ?progress:(int -> unit) -> opts -> report

val report_to_json : report -> Stallhide_util.Json.t

val pp_report : Format.formatter -> report -> unit
