(** Replayable counterexample files.

    A repro bundles everything a deterministic replay needs: the oracle
    that failed, the full generator configuration (which fixes the
    memory image and lane registers — see {!Gen.workload}), the
    (possibly shrunken) program as assembler text, and the diagnostic
    the oracle reported. Saved as JSON so a failure seen in CI can be
    committed next to the fix and replayed forever with
    [stallhide fuzz --replay file.json]. *)

open Stallhide_isa

type t = {
  oracle : Oracle.name;
  cfg : Gen.cfg;
  program_text : string;  (** {!Asm.parse}able listing *)
  detail : string;  (** the oracle's counterexample message *)
}

val make : oracle:Oracle.name -> cfg:Gen.cfg -> program:Program.t -> detail:string -> t

(** @raise Asm.Parse_error on a corrupted listing. *)
val program : t -> Program.t

val to_json : t -> Stallhide_util.Json.t

(** @raise Invalid_argument on a malformed encoding. *)
val of_json : Stallhide_util.Json.t -> t

(** [save ~dir t] writes [repro-<oracle>-seed<seed>.json] under [dir]
    (created if missing) and returns the path. *)
val save : dir:string -> t -> string

(** @raise Sys_error / Invalid_argument on unreadable or malformed files. *)
val load : string -> t

(** Re-run the saved oracle on the saved program and configuration. *)
val replay : t -> Oracle.verdict
