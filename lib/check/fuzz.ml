open Stallhide_isa
open Stallhide_util

type opts = {
  cases : int;
  seed : int;
  oracles : Oracle.name list;
  shrink : bool;
  repro_dir : string option;
}

let default_opts =
  { cases = 100; seed = 42; oracles = Oracle.all; shrink = true; repro_dir = None }

type counterexample = {
  oracle : Oracle.name;
  case_seed : int;
  detail : string;
  instructions : int;
  shrunk_instructions : int option;
  program_text : string;
  repro_path : string option;
}

type report = {
  cases : int;
  oracles : Oracle.name list;
  checks : int;
  counterexamples : counterexample list;
  invalid : (Oracle.name * int * string) list;
}

let ok r = r.counterexamples = [] && r.invalid = []

(* The shrinker's test: a candidate "still fails" iff it assembles and
   the same oracle still reports a counterexample. Invalid candidates
   (unassemblable, or budget blow-ups from e.g. a deleted loop
   decrement) are rejected, so shrinking cannot wander from a
   miscompile to an unrelated non-terminating program. *)
let still_fails oracle cfg items =
  match Program.assemble items with
  | exception Program.Error _ -> false
  | prog -> ( match Oracle.check oracle cfg prog with Oracle.Counterexample _ -> true | _ -> false)

let shrunken oracle cfg program =
  let items = Program.to_items program in
  let minimal = Shrink.minimize ~test:(still_fails oracle cfg) items in
  let prog = Program.assemble minimal in
  let detail =
    match Oracle.check oracle cfg prog with
    | Oracle.Counterexample d -> d
    | _ -> assert false (* minimize only returns candidates that still fail *)
  in
  (prog, Shrink.instruction_count minimal, detail)

let run ?(progress = fun _ -> ()) (opts : opts) =
  let counterexamples = ref [] in
  let invalid = ref [] in
  let checks = ref 0 in
  for i = 0 to opts.cases - 1 do
    let case = Gen.case ~seed:(opts.seed + i) () in
    let cfg = case.Gen.cfg in
    List.iter
      (fun oracle ->
        incr checks;
        match Oracle.check_case oracle case with
        | Oracle.Pass -> ()
        | Oracle.Invalid why -> invalid := (oracle, cfg.Gen.seed, why) :: !invalid
        | Oracle.Counterexample detail ->
            let instructions =
              Shrink.instruction_count (Program.to_items case.Gen.program)
            in
            let prog, shrunk_instructions, detail =
              if opts.shrink then
                let p, n, d = shrunken oracle cfg case.Gen.program in
                (p, Some n, d)
              else (case.Gen.program, None, detail)
            in
            let repro = Repro.make ~oracle ~cfg ~program:prog ~detail in
            let repro_path =
              Option.map (fun dir -> Repro.save ~dir repro) opts.repro_dir
            in
            counterexamples :=
              {
                oracle;
                case_seed = cfg.Gen.seed;
                detail;
                instructions;
                shrunk_instructions;
                program_text = repro.Repro.program_text;
                repro_path;
              }
              :: !counterexamples)
      opts.oracles;
    progress (i + 1)
  done;
  {
    cases = opts.cases;
    oracles = opts.oracles;
    checks = !checks;
    counterexamples = List.rev !counterexamples;
    invalid = List.rev !invalid;
  }

let cex_to_json c =
  Json.Obj
    ([
       ("oracle", Json.String (Oracle.to_string c.oracle));
       ("seed", Json.Int c.case_seed);
       ("detail", Json.String c.detail);
       ("instructions", Json.Int c.instructions);
     ]
    @ (match c.shrunk_instructions with
      | Some n -> [ ("shrunk_instructions", Json.Int n) ]
      | None -> [])
    @ [ ("program", Json.String c.program_text) ]
    @ match c.repro_path with Some p -> [ ("repro", Json.String p) ] | None -> [])

let report_to_json r =
  Json.Obj
    [
      ("cases", Json.Int r.cases);
      ("oracles", Json.List (List.map (fun o -> Json.String (Oracle.to_string o)) r.oracles));
      ("checks", Json.Int r.checks);
      ("counterexamples", Json.List (List.map cex_to_json r.counterexamples));
      ( "invalid",
        Json.List
          (List.map
             (fun (o, seed, why) ->
               Json.Obj
                 [
                   ("oracle", Json.String (Oracle.to_string o));
                   ("seed", Json.Int seed);
                   ("why", Json.String why);
                 ])
             r.invalid) );
      ("ok", Json.Bool (ok r));
    ]

let pp_report ppf r =
  Format.fprintf ppf "fuzz: %d cases x %d oracle(s) = %d checks@." r.cases
    (List.length r.oracles) r.checks;
  List.iter
    (fun c ->
      Format.fprintf ppf "  COUNTEREXAMPLE [%s] seed %d: %s@." (Oracle.to_string c.oracle)
        c.case_seed c.detail;
      (match c.shrunk_instructions with
      | Some n -> Format.fprintf ppf "    shrunk %d -> %d instruction(s)@." c.instructions n
      | None -> ());
      (match c.repro_path with
      | Some p -> Format.fprintf ppf "    repro: %s@." p
      | None -> ());
      Format.fprintf ppf "    %s@."
        (String.concat "\n    " (String.split_on_char '\n' c.program_text)))
    r.counterexamples;
  List.iter
    (fun (o, seed, why) ->
      Format.fprintf ppf "  INVALID [%s] seed %d: %s@." (Oracle.to_string o) seed why)
    r.invalid;
  if ok r then Format.fprintf ppf "  all oracles passed@."
  else
    Format.fprintf ppf "  %d counterexample(s), %d invalid case(s)@."
      (List.length r.counterexamples) (List.length r.invalid)
