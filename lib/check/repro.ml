open Stallhide_isa
open Stallhide_util

type t = { oracle : Oracle.name; cfg : Gen.cfg; program_text : string; detail : string }

let make ~oracle ~cfg ~program ~detail =
  { oracle; cfg; program_text = Format.asprintf "%a" Program.pp program; detail }

let program t = Asm.parse t.program_text

let to_json t =
  Json.Obj
    [
      ("oracle", Json.String (Oracle.to_string t.oracle));
      ("cfg", Gen.cfg_to_json t.cfg);
      ("program", Json.String t.program_text);
      ("detail", Json.String t.detail);
    ]

let of_json j =
  let str name =
    match Option.bind (Json.member name j) Json.to_string_opt with
    | Some s -> s
    | None -> invalid_arg (Printf.sprintf "Repro.of_json: missing field %S" name)
  in
  let oracle =
    match Oracle.of_string (str "oracle") with
    | Some o -> o
    | None -> invalid_arg (Printf.sprintf "Repro.of_json: unknown oracle %S" (str "oracle"))
  in
  let cfg =
    match Json.member "cfg" j with
    | Some c -> Gen.cfg_of_json c
    | None -> invalid_arg "Repro.of_json: missing field \"cfg\""
  in
  { oracle; cfg; program_text = str "program"; detail = str "detail" }

let save ~dir t =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path =
    Filename.concat dir
      (Printf.sprintf "repro-%s-seed%d.json" (Oracle.to_string t.oracle) t.cfg.Gen.seed)
  in
  Json.write ~path (to_json t);
  path

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_json (Json.of_string s)

let replay t = Oracle.check t.oracle t.cfg (program t)
