(** Seeded typed random-program generator over the ISA.

    Programs are generated under a register/region discipline that makes
    them well-formed {e by construction} — the properties every oracle
    in this library relies on:

    - {b termination}: control flow is forward branches plus
      counted-down loops with reserved counter registers the loop body
      never writes, so every program halts on every input;
    - {b memory safety}: loads and stores only ever address two regions
      of the image — a shared read-only {e pointer arena} whose every
      word holds the base address of some arena node (closed under
      dereference), and a per-lane private {e data region} — so no
      access can fault and no two lanes ever write the same word;
    - {b interleaving independence}: because write sets are
      lane-private and the pointer arena is read-only, the final
      architectural state is the same under any scheduling of the
      lanes — which is exactly what lets the differential oracles
      compare sequential, round-robin and N-core executions;
    - {b no undefined operations}: divide/remainder operands are
      nonzero immediates, so verifier-clean programs never trap.

    Everything is a pure function of the configuration: same [cfg],
    same program, same image contents, same lane registers. *)

open Stallhide_isa
open Stallhide_workloads

(** Register convention (documented so shrunken repro files stay
    readable): [r0] pointer-arena node (read-only), [r1] lane-private
    data base (read-only), [r2]/[r3] pointer registers (always hold a
    valid node base), [r4]–[r7] scratch data registers, [r8]/[r9]
    reserved loop counters. *)

type cfg = {
  lanes : int;  (** concurrent lanes (>= 1) *)
  ops : int;  (** opmark-delimited operations per lane *)
  ptr_nodes : int;  (** pointer-arena nodes (one 64-byte line each) *)
  data_words : int;  (** private data words per lane *)
  max_loop : int;  (** max trip count of generated loops *)
  stores : bool;  (** allow stores (off for scavenger co-runners) *)
  cores : int;  (** SMP-oracle core count for the variant arm *)
  scavenger_interval : int;  (** scavenger-pass target inter-yield interval *)
  policy_ix : int;  (** primary-pass policy: 0 always, 1 cost-benefit, 2 threshold *)
  seed : int;
}

val default_cfg : cfg

type case = { cfg : cfg; program : Program.t }

(** Deterministic program for this configuration (drawn from
    [cfg.seed], independent of the image stream). *)
val program : cfg -> Program.t

(** [case ~seed] draws a configuration (sizes, shapes, knobs) from
    [seed] and generates its program. *)
val case : ?base:cfg -> seed:int -> unit -> case

(** [workload cfg prog] builds a {e fresh} workload instance: new image
    (pointer arena + per-lane data regions, contents drawn from
    [cfg.seed]), per-lane initial registers, [prog] as the binary.
    Arms of a differential oracle must each call this — runs mutate the
    image. [prog] defaults to {!program}[ cfg], so a shrunken or
    mutated replacement can be rebound to the identical environment. *)
val workload : ?prog:Program.t -> cfg -> Workload.t

val cfg_to_json : cfg -> Stallhide_util.Json.t

(** @raise Invalid_argument on a malformed or incomplete encoding. *)
val cfg_of_json : Stallhide_util.Json.t -> cfg
