open Effect
open Effect.Deep

type _ Effect.t += Yield : unit Effect.t

let yields = ref 0

let yield () =
  try perform Yield
  with Effect.Unhandled Yield -> failwith "Fiber.yield: called outside Fiber.run"

let run fns =
  let q : (unit -> unit) Queue.t = Queue.create () in
  let run_next () = match Queue.take_opt q with Some f -> f () | None -> () in
  let spawn f =
    match_with f ()
      {
        retc = (fun () -> run_next ());
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Yield ->
                Some
                  (fun (k : (a, _) continuation) ->
                    incr yields;
                    Queue.push (fun () -> continue k ()) q;
                    run_next ())
            | _ -> None);
      }
  in
  match fns with
  | [] -> ()
  | f :: rest ->
      List.iter (fun g -> Queue.push (fun () -> spawn g) q) rest;
      spawn f

let ping_pong ~rounds =
  let fiber () =
    for _ = 1 to rounds do
      yield ()
    done
  in
  run [ fiber; fiber ]

let yield_count () = !yields
