(** Real light-weight coroutines on OCaml 5 effect handlers.

    This is the host-level counterpart of the paper's premise: a
    cooperative user-space context switch costs nanoseconds, orders of
    magnitude below OS threads. The simulator charges a *modeled* switch
    cost; this module lets the benchmark harness measure a *real* one
    (see bench table C2).

    The scheduler is a single-threaded run queue: [yield] suspends the
    current fiber and resumes the next runnable one. *)

(** [yield ()] suspends the calling fiber.
    @raise Failure if called outside {!run}. *)
val yield : unit -> unit

(** [run fns] drives all fibers to completion, round-robin at yields. *)
val run : (unit -> unit) list -> unit

(** [ping_pong ~rounds] runs two fibers that alternately yield to each
    other [rounds] times each — [2 * rounds] context switches, the
    standard switch-cost microbenchmark shape. *)
val ping_pong : rounds:int -> unit

(** Number of yields executed since the program started (test hook). *)
val yield_count : unit -> int
