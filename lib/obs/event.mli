(** Typed trace events — the single vocabulary every telemetry consumer
    (timeline rendering, Perfetto export, yield-site attribution, the
    counter registry) reads.

    Producers: the execution engine (via {!Stream.hooks}), and the
    schedulers/servers, which push scheduling-level events
    ([Context_switch], [Dispatch], [Scavenger_escalation]) directly.
    All cycle stamps come from the shared simulated clock, so events of
    one context are monotone in recording order. *)

open Stallhide_isa
open Stallhide_mem

(** Scheduler-watchdog verdicts on a misbehaving scavenger (the
    fault-injection self-defense loop): a [Strike] is one dispatch
    caught past its cycle bound; [Demote] benches the context after K
    strikes; [Quarantine] retires a repeat offender for good; [Readmit]
    lets a demoted context back in after its backoff expires. *)
type watchdog_action = Strike | Demote | Quarantine | Readmit

val watchdog_action_name : watchdog_action -> string

type t =
  | Yield of { ctx : int; pc : int; kind : Instr.yield_kind; fired : bool; cycle : int }
      (** a yield-family instruction retired; [fired = false] means the
          conditional check fell through and the core was kept *)
  | Cache_access of {
      ctx : int;
      pc : int;
      addr : int;
      level : Hierarchy.level;  (** level that served the demand load *)
      stall : int;  (** stall cycles actually paid (after OoO overlap) *)
      queue : int;
          (** of those, cycles queued at the shared-L3 port — contention
              the critical-path extractor separates from service time *)
      cycle : int;
    }
  | Stall of { ctx : int; pc : int; cycles : int; cycle : int }
      (** back-end stall paid at [pc] (demand load or accelerator wait) *)
  | Frontend_stall of { ctx : int; pc : int; cycles : int; cycle : int }
  | Op_retired of { ctx : int; pc : int; cycle : int }
      (** an application-level operation completed ([Opmark]) *)
  | Context_switch of {
      from_ctx : int;
      to_ctx : int;  (** [-1] when the scheduler has not picked yet *)
      at_pc : int;  (** yield site charged, [-1] for halt/fault switches *)
      cost : int;
      cycle : int;
    }
  | Scavenger_escalation of { ctx : int; pc : int; cycle : int }
      (** a scavenger hit its own miss inside a primary's stall window
          and the core was handed to the next one (§3.3) *)
  | Watchdog of { ctx : int; action : watchdog_action; cycle : int }
      (** the scheduler watchdog acted on scavenger [ctx] *)
  | Dispatch of { ctx : int; start : int; stop : int }
      (** one scheduler dispatch span: [ctx] held the core over
          [start, stop) *)
  | Span_open of { ctx : int; name : string; cycle : int }
      (** start of a named logical interval on [ctx] — e.g. a request's
          lifetime from enqueue to completion. Spans of the same ctx may
          overlap across cores (migration); pair them with
          {!Critical_path.pair_spans}, not by stack discipline. *)
  | Span_close of { ctx : int; name : string; cycle : int }
  | Steal of { ctx : int; from_core : int; to_core : int; cycle : int }
      (** [ctx] migrated from [from_core]'s backlog to [to_core]
          (scavenger work stealing or donation) *)

(** Context the event belongs to ([from_ctx] for switches). *)
val ctx_of : t -> int

(** Cycle stamp ([start] for dispatch spans). *)
val cycle_of : t -> int

(** ["primary"] or ["scavenger"]. *)
val kind_name : Instr.yield_kind -> string

val pp : Format.formatter -> t -> unit
