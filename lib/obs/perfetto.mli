(** Chrome/Perfetto [trace_event] exporter.

    Renders a {!Stream.t} as the JSON object format both
    [chrome://tracing] and [ui.perfetto.dev] load: one track (tid) per
    simulated context, [Dispatch] spans as complete ("X") events, and
    yields, context switches, scavenger escalations, steals and missing
    loads as instants, and request-lifetime [Span_open]/[Span_close]
    pairs as async ("b"/"e") events keyed by context id — async spans
    may overlap on one track, which concurrent requests on a core do.
    Timestamps are simulated cycles (declared as ns — the unit
    Perfetto displays; cycles are the only clock the simulator has). *)

val to_json : Stream.t -> Stallhide_util.Json.t

val write : path:string -> Stream.t -> unit

(** Multi-core export: one named track per (label, stream) pair, in
    order — track [i] gets [tid = i], so an SMP trace renders as N
    parallel core lanes instead of one interleaved lane. Dispatch spans
    keep their context id in the event {e name} ("ctx 7"), which is how
    a migrated (stolen) coroutine shows up on two different lanes'
    labels but only ever runs on one. *)
val to_json_tracks : (string * Stream.t) list -> Stallhide_util.Json.t

val write_tracks : path:string -> (string * Stream.t) list -> unit
