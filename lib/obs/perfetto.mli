(** Chrome/Perfetto [trace_event] exporter.

    Renders a {!Stream.t} as the JSON object format both
    [chrome://tracing] and [ui.perfetto.dev] load: one track (tid) per
    simulated context, [Dispatch] spans as complete ("X") events, and
    yields, context switches, scavenger escalations and missing loads as
    instants. Timestamps are simulated cycles (declared as ns — the unit
    Perfetto displays; cycles are the only clock the simulator has). *)

val to_json : Stream.t -> Stallhide_util.Json.t

val write : path:string -> Stream.t -> unit
