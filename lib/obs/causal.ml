open Stallhide_util

type kind = Resource | Site

let kind_name = function Resource -> "resource" | Site -> "site"

type target = { id : string; kind : kind; detail : string }

type contribution = {
  target : target;
  base : Sweep.series;
  counterfactual : Sweep.series;
  contribution : Sweep.series;
}

type report = { seeds : int list; base : Sweep.series; rows : contribution list }

let run ~seeds ~base ~targets =
  if seeds = [] then invalid_arg "Causal.run: no seeds";
  let base_samples = List.map base seeds in
  let base_series = Sweep.of_samples base_samples in
  let rows =
    List.map
      (fun (target, f) ->
        let cf = List.map f seeds in
        {
          target;
          base = base_series;
          counterfactual = Sweep.of_samples cf;
          (* contribution = base - counterfactual, paired per seed *)
          contribution = Sweep.delta cf base_samples;
        })
      targets
  in
  { seeds; base = base_series; rows }

let contribution_value metric c = (Sweep.series_value metric c.contribution).value

let ranked ?kind metric report =
  let rows =
    match kind with
    | None -> report.rows
    | Some k -> List.filter (fun c -> c.target.kind = k) report.rows
  in
  List.stable_sort
    (fun a b -> compare (contribution_value metric b) (contribution_value metric a))
    rows

let rank_of metric report ~id =
  match List.find_opt (fun c -> String.equal c.target.id id) report.rows with
  | None -> None
  | Some c ->
      let peers = ranked ~kind:c.target.kind metric report in
      let rec pos i = function
        | [] -> None
        | x :: rest -> if String.equal x.target.id id then Some i else pos (i + 1) rest
      in
      pos 1 peers

let share metric report c =
  let base = (Sweep.series_value metric report.base).value in
  if base = 0.0 then 0.0 else contribution_value metric c /. base

let pp ~metric fmt report =
  let m = Sweep.metric_name metric in
  Format.fprintf fmt "causal attribution over %d seed%s, metric %s (base = %.1f)@."
    (List.length report.seeds)
    (if List.length report.seeds = 1 then "" else "s")
    m
    (Sweep.series_value metric report.base).value;
  List.iter
    (fun k ->
      let rows = ranked ~kind:k metric report in
      if rows <> [] then begin
        Format.fprintf fmt "  %ss:@." (kind_name k);
        List.iteri
          (fun i c ->
            let s = Sweep.series_value metric c.contribution in
            Format.fprintf fmt "    #%d %-16s %+.1f ± %.1f cycles (%.1f%% of %s)  %s@." (i + 1)
              c.target.id s.value s.ci95
              (100.0 *. share metric report c)
              m c.target.detail)
          rows
      end)
    [ Resource; Site ]

let contribution_json metric report c =
  let s = Sweep.series_value metric c.contribution in
  Json.Obj
    [
      ("id", Json.String c.target.id);
      ("kind", Json.String (kind_name c.target.kind));
      ("detail", Json.String c.target.detail);
      ("contribution", Json.Float s.value);
      ("ci95", Json.Float s.ci95);
      ("share", Json.Float (share metric report c));
      ( "series",
        Json.Obj
          (List.map
             (fun m ->
               let v = Sweep.series_value m c.contribution in
               ( Sweep.metric_name m,
                 Json.Obj [ ("value", Json.Float v.value); ("ci95", Json.Float v.ci95) ] ))
             Sweep.all_metrics) );
    ]

let to_json ~metric report =
  let table k =
    Json.List (List.map (contribution_json metric report) (ranked ~kind:k metric report))
  in
  Json.Obj
    [
      ("metric", Json.String (Sweep.metric_name metric));
      ("seeds", Json.List (List.map (fun s -> Json.Int s) report.seeds));
      ("base", Json.Float (Sweep.series_value metric report.base).value);
      ("resources", table Resource);
      ("sites", table Site);
    ]
