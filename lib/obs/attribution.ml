open Stallhide_isa
open Stallhide_util
open Stallhide_binopt

type site = {
  yield_pc : int;
  kind : Instr.yield_kind;
  covered : int list;
  fires : int;
  skips : int;
  baseline_stall : int;
  residual_stall : int;
  hidden_stall : int;
  switch_paid : int;
  predicted_gain : float;
  measured_gain : int;
}

type report = {
  sites : site list;
  total_baseline_stall : int;
  total_residual_stall : int;
  baseline_dropped : int;
  dropped : int;
}

(* Static covering map over the instrumented program: each selected
   load/wait belongs to the nearest preceding yield — the primary pass
   emits the group's yield before its loads, so nearest-preceding is the
   group structure, not a heuristic. *)
let covering_sites program ~orig_of_new ~selected =
  let is_selected = Hashtbl.create 16 in
  List.iter (fun pc -> Hashtbl.replace is_selected pc ()) selected;
  let sites = ref [] in
  let current = ref None in
  for pc = 0 to Program.length program - 1 do
    match Program.instr program pc with
    | Instr.Yield kind ->
        current := Some (pc, kind, ref []);
        sites := !current :: !sites
    | Instr.Yield_cond _ ->
        let kind = Instr.Primary in
        current := Some (pc, kind, ref []);
        sites := !current :: !sites
    | Instr.Load _ | Instr.Accel_wait _ -> (
        let orig = orig_of_new.(pc) in
        if Hashtbl.mem is_selected orig then
          match !current with
          | Some (_, _, covered) -> covered := orig :: !covered
          | None -> ())
    | _ -> ()
  done;
  List.rev_map
    (fun site ->
      match site with
      | Some (pc, kind, covered) -> (pc, kind, List.rev !covered)
      | None -> assert false)
    !sites

let tbl_get tbl key ~default = Option.value ~default (Hashtbl.find_opt tbl key)

let predicted machine estimates program ~yield_pc ~covered ~execs =
  let live_regs =
    match (Program.annot program yield_pc).Program.live_regs with
    | Some n -> n
    | None -> Reg.count
  in
  let per_exec =
    List.fold_left
      (fun acc orig ->
        let p = Option.value ~default:0.0 (estimates.Gain_cost.miss_probability orig) in
        let stall =
          Option.value ~default:machine.Gain_cost.default_miss_stall
            (estimates.Gain_cost.stall_per_miss orig)
        in
        acc +. ((p *. stall) -. machine.Gain_cost.prefetch_cost))
      0.0 covered
    -. (2.0 *. Gain_cost.switch_cost machine ~live_regs)
  in
  float_of_int execs *. per_exec

let build ~program ~orig_of_new ~selected ~machine ~estimates ~baseline stream =
  let base_stall = Stream.stall_by_pc baseline in
  let map pc = orig_of_new.(pc) in
  let residual = Stream.stall_by_pc ~map stream in
  let yields = Stream.yields_by_pc stream in
  let switches = Stream.switch_cycles_by_pc stream in
  let sites =
    covering_sites program ~orig_of_new ~selected
    |> List.map (fun (yield_pc, kind, covered) ->
           let fires, skips = tbl_get yields yield_pc ~default:(0, 0) in
           let sum tbl = List.fold_left (fun acc pc -> acc + tbl_get tbl pc ~default:0) 0 covered in
           let baseline_stall = sum base_stall in
           let residual_stall = sum residual in
           let switch_paid = tbl_get switches yield_pc ~default:0 in
           let hidden_stall = baseline_stall - residual_stall in
           {
             yield_pc;
             kind;
             covered;
             fires;
             skips;
             baseline_stall;
             residual_stall;
             hidden_stall;
             switch_paid;
             predicted_gain =
               predicted machine estimates program ~yield_pc ~covered ~execs:(fires + skips);
             measured_gain = hidden_stall - switch_paid;
           })
  in
  let total tbl = Hashtbl.fold (fun _ v acc -> acc + v) tbl 0 in
  {
    sites;
    total_baseline_stall = total base_stall;
    total_residual_stall = total residual;
    baseline_dropped = Stream.dropped baseline;
    dropped = Stream.dropped stream;
  }

let pp_report fmt r =
  Format.fprintf fmt "%-8s %-10s %-14s %8s %8s %9s %9s %8s %10s %10s@."
    "yield@pc" "kind" "covers" "fires" "skips" "base" "residual" "switch" "predicted" "measured";
  List.iter
    (fun s ->
      let covers =
        match s.covered with
        | [] -> "-"
        | pcs -> String.concat "," (List.map string_of_int pcs)
      in
      Format.fprintf fmt "%-8d %-10s %-14s %8d %8d %9d %9d %8d %10.1f %10d@." s.yield_pc
        (match s.kind with Instr.Primary -> "primary" | Instr.Scavenger -> "scavenger")
        covers s.fires s.skips s.baseline_stall s.residual_stall s.switch_paid s.predicted_gain
        s.measured_gain)
    r.sites;
  Format.fprintf fmt "total stall: baseline=%d residual=%d hidden=%d@." r.total_baseline_stall
    r.total_residual_stall
    (r.total_baseline_stall - r.total_residual_stall);
  if r.dropped > 0 || r.baseline_dropped > 0 then
    Format.fprintf fmt "warning: %d + %d events dropped; per-site numbers under-count@."
      r.baseline_dropped r.dropped

let to_json r =
  Json.Obj
    [
      ( "sites",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("yield_pc", Json.Int s.yield_pc);
                   ("kind", Json.String (Event.kind_name s.kind));
                   ("covered", Json.List (List.map (fun pc -> Json.Int pc) s.covered));
                   ("fires", Json.Int s.fires);
                   ("skips", Json.Int s.skips);
                   ("baseline_stall", Json.Int s.baseline_stall);
                   ("residual_stall", Json.Int s.residual_stall);
                   ("hidden_stall", Json.Int s.hidden_stall);
                   ("switch_paid", Json.Int s.switch_paid);
                   ("predicted_gain", Json.Float s.predicted_gain);
                   ("measured_gain", Json.Int s.measured_gain);
                 ])
             r.sites) );
      ("total_baseline_stall", Json.Int r.total_baseline_stall);
      ("total_residual_stall", Json.Int r.total_residual_stall);
      ("baseline_dropped", Json.Int r.baseline_dropped);
      ("dropped", Json.Int r.dropped);
    ]
