(** Counterfactual causal attribution — Coz's virtual speedups made
    literal.

    For each candidate cause (a memory level, a yield site), the driver
    re-runs the same seeded workload in a counterfactual world where
    the miss latency charged to that one cause is zeroed (or scaled),
    everything else untouched. The drop in the chosen latency metric
    *is* that cause's causal contribution: unlike a profile share, it
    accounts for overlap, queueing and scheduling second-order effects,
    because the simulator replays them all under the intervention.

    Like {!Sweep}, this module is workload-agnostic — it orchestrates
    closures from seed to {!Sweep.sample}; [lib/why] supplies closures
    that arm [Hierarchy.set_level_scale] (levels) or
    [Engine.config.stall_shape] (sites) before running. Contributions
    come with repeated-seed confidence intervals; rankings are
    deterministic given the seed list. *)

type kind = Resource | Site

val kind_name : kind -> string

type target = {
  id : string;  (** stable id, e.g. ["level:DRAM"] or ["site:41"] *)
  kind : kind;
  detail : string;  (** human description *)
}

type contribution = {
  target : target;
  base : Sweep.series;
  counterfactual : Sweep.series;
  contribution : Sweep.series;
      (** base - counterfactual, paired per seed: cycles of the metric
          this cause is responsible for (positive = removing the cause
          helps) *)
}

type report = { seeds : int list; base : Sweep.series; rows : contribution list }

(** [run ~seeds ~base ~targets] runs the base closure once per seed and
    each target's counterfactual closure once per seed. *)
val run :
  seeds:int list ->
  base:(int -> Sweep.sample) ->
  targets:(target * (int -> Sweep.sample)) list ->
  report

(** Rows sorted by descending contribution to [metric]; restricted to
    one target kind when [kind] is given. Ties (exactly equal
    contributions) keep submission order, so rankings are stable. *)
val ranked : ?kind:kind -> Sweep.metric -> report -> contribution list

(** 1-based rank of target [id] among targets of its own kind under
    [metric]; [None] if the id is unknown. Resources rank against
    resources and sites against sites — a level-zeroing counterfactual
    subsumes the site-level stalls it serves, so cross-kind positions
    are not comparable. *)
val rank_of : Sweep.metric -> report -> id:string -> int option

(** Contribution as a fraction of the base metric (0 when the base
    is 0). *)
val share : Sweep.metric -> report -> contribution -> float

val pp : metric:Sweep.metric -> Format.formatter -> report -> unit

val to_json : metric:Sweep.metric -> report -> Stallhide_util.Json.t
