(** Per-request critical-path extraction.

    Given the merged event timeline of an SMP run and each request's
    lifecycle (arrival, completion, serving context), decompose its
    sojourn into the components a tail-latency investigation needs:

    - [queueing] — arrival to first dispatch (waiting in a backlog);
    - [stall] — back-end memory/accelerator stall paid on core;
    - [contention] — the slice of those stalls spent queued at the
      shared-L3 port (coherence/bandwidth pressure from other cores);
    - [switch] — context-switch cycles charged to the request;
    - [compute] — remaining on-core cycles;
    - [offcore] — gaps between dispatch spans after first dispatch
      (yielded away while other coroutines held the core).

    All components are exact sums over the request's [Dispatch],
    [Stall], [Cache_access] and [Context_switch] events, so
    [latency = queueing + compute + stall + switch + offcore] holds by
    construction ([contention] is a sub-slice of [stall], not an
    additional term). *)

type request = {
  rid : int;
  ctx : int;  (** the request's context id (unique per request) *)
  core : int;  (** core that completed it; [-1] if never served *)
  arrival : int;
  finished : int;  (** completion cycle; [< 0] if never finished *)
}

type breakdown = {
  rid : int;
  core : int;
  latency : int;
  queueing : int;
  compute : int;
  stall : int;
  contention : int;  (** part of [stall] queued at the shared L3 *)
  switch : int;
  offcore : int;
}

(** [breakdown ~events request] — [events] is the run's merged event
    list (any order; filtered by [request.ctx] internally). Requests
    that never finished yield [None]. *)
val breakdown : events:Event.t list -> request -> breakdown option

type totals = {
  n : int;
  latency : int;
  queueing : int;
  compute : int;
  stall : int;
  contention : int;
  switch : int;
  offcore : int;
}

val totals : breakdown list -> totals

(** The slowest [frac] of requests (by latency, ties broken by rid for
    determinism); [frac = 0.01] isolates the p99 tail. Always at least
    one request when the input is non-empty. *)
val tail : frac:float -> breakdown list -> breakdown list

(** Pair [Span_open]/[Span_close] events by [(ctx, name)] across the
    whole merged list (cross-core pairing included — a span may open on
    one core's stream and close on another's after a steal). Returns
    [(ctx, name, open_cycle, close_cycle option)] in open order;
    [None] marks an unbalanced open. Unmatched closes are dropped.
    Multiple concurrent opens of the same key close in FIFO order. *)
val pair_spans : Event.t list -> (int * string * int * int option) list

val pp_totals : Format.formatter -> totals -> unit

val to_json : totals -> Stallhide_util.Json.t
