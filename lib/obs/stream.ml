open Stallhide_util
open Stallhide_mem
open Stallhide_cpu

type t = {
  buf : Event.t Vec.t;
  capacity : int;
  mutable dropped : int;
  registry : Registry.t;
}

let create ?(capacity = 1 lsl 18) () =
  { buf = Vec.create (); capacity; dropped = 0; registry = Registry.create () }

let count t event =
  let r = t.registry in
  match event with
  | Event.Yield { ctx; fired; _ } ->
      Registry.incr (Registry.counter r ~ctx (if fired then "yield.fired" else "yield.skipped"))
  | Event.Cache_access { ctx; level; stall; queue; _ } ->
      Registry.incr (Registry.counter r ~ctx ("load." ^ Hierarchy.level_name level));
      if stall > 0 then Registry.observe (Registry.histogram r ~ctx "load.stall") stall;
      if queue > 0 then Registry.incr ~by:queue (Registry.counter r ~ctx "load.queue_cycles")
  | Event.Stall { ctx; cycles; _ } ->
      Registry.incr ~by:cycles (Registry.counter r ~ctx "stall.cycles")
  | Event.Frontend_stall { ctx; cycles; _ } ->
      Registry.incr ~by:cycles (Registry.counter r ~ctx "frontend_stall.cycles")
  | Event.Op_retired { ctx; _ } -> Registry.incr (Registry.counter r ~ctx "ops")
  | Event.Context_switch { from_ctx; cost; _ } ->
      Registry.incr (Registry.counter r ~ctx:from_ctx "switch.count");
      Registry.observe (Registry.histogram r ~ctx:from_ctx "switch.cost") cost
  | Event.Scavenger_escalation { ctx; _ } ->
      Registry.incr (Registry.counter r ~ctx "scavenger.escalations")
  | Event.Watchdog { ctx; action; _ } ->
      let name =
        match action with
        | Event.Strike -> "watchdog.strikes"
        | Event.Demote -> "watchdog.demotions"
        | Event.Quarantine -> "watchdog.quarantines"
        | Event.Readmit -> "watchdog.readmissions"
      in
      Registry.incr (Registry.counter r ~ctx name)
  | Event.Dispatch { ctx; start; stop } ->
      Registry.observe (Registry.histogram r ~ctx "dispatch.cycles") (stop - start)
  | Event.Span_open { ctx; _ } -> Registry.incr (Registry.counter r ~ctx "span.opened")
  | Event.Span_close { ctx; _ } -> Registry.incr (Registry.counter r ~ctx "span.closed")
  | Event.Steal { ctx; _ } -> Registry.incr (Registry.counter r ~ctx "steal.migrations")

let record t event =
  count t event;
  if Vec.length t.buf < t.capacity then Vec.push t.buf event else t.dropped <- t.dropped + 1

let events t = Vec.to_list t.buf

let iter f t = Vec.iter f t.buf

let length t = Vec.length t.buf

let dropped t = t.dropped

let reset t =
  Vec.clear t.buf;
  t.dropped <- 0;
  Registry.reset t.registry

let registry t = t.registry

let hooks t =
  {
    Events.nop with
    Events.on_load =
      (fun (info : Events.load_info) ->
        record t
          (Event.Cache_access
             {
               ctx = info.Events.ctx;
               pc = info.Events.pc;
               addr = info.Events.addr;
               level = info.Events.level;
               stall = info.Events.stall;
               queue = info.Events.queue;
               cycle = info.Events.cycle;
             }));
    on_stall = (fun ~ctx ~pc ~cycles ~cycle -> record t (Event.Stall { ctx; pc; cycles; cycle }));
    on_frontend_stall =
      (fun ~ctx ~pc ~cycles ~cycle -> record t (Event.Frontend_stall { ctx; pc; cycles; cycle }));
    on_opmark = (fun ~ctx ~pc ~cycle -> record t (Event.Op_retired { ctx; pc; cycle }));
    on_yield =
      (fun ~ctx ~pc ~kind ~fired ~cycle -> record t (Event.Yield { ctx; pc; kind; fired; cycle }));
  }

let fold_tbl t select =
  let tbl = Hashtbl.create 64 in
  iter
    (fun e ->
      match select e with
      | Some (key, v) ->
          Hashtbl.replace tbl key (v + Option.value ~default:0 (Hashtbl.find_opt tbl key))
      | None -> ())
    t;
  tbl

let stall_by_pc ?(map = fun pc -> pc) t =
  fold_tbl t (function
    | Event.Stall { pc; cycles; _ } -> Some (map pc, cycles)
    | _ -> None)

let execs_by_pc ?(map = fun pc -> pc) t =
  fold_tbl t (function Event.Cache_access { pc; _ } -> Some (map pc, 1) | _ -> None)

let yields_by_pc t =
  let tbl = Hashtbl.create 32 in
  iter
    (fun e ->
      match e with
      | Event.Yield { pc; fired; _ } ->
          let f, s = Option.value ~default:(0, 0) (Hashtbl.find_opt tbl pc) in
          Hashtbl.replace tbl pc (if fired then (f + 1, s) else (f, s + 1))
      | _ -> ())
    t;
  tbl

let switch_cycles_by_pc t =
  fold_tbl t (function
    | Event.Context_switch { at_pc; cost; _ } when at_pc >= 0 -> Some (at_pc, cost)
    | _ -> None)

let spans t =
  List.filter_map
    (function Event.Dispatch { ctx; start; stop } -> Some (ctx, start, stop) | _ -> None)
    (events t)
