(** The trace-event stream: a bounded in-memory buffer of {!Event.t}
    plus a {!Registry.t} maintained incrementally as events arrive.

    Zero-cost discipline: nothing in the simulator ever *requires* a
    stream. Engine hooks default to no-ops, schedulers take
    [?obs:Stream.t option] defaulting to [None], and no hook ever
    touches the simulated clock — so cycle counts are identical with
    telemetry on or off (asserted by the obs tests). When the buffer
    fills, later events are counted in {!dropped} rather than recorded
    (the registry keeps counting — only the raw event log is bounded). *)

type t

(** [create ?capacity ()] — default capacity [1 lsl 18] events. *)
val create : ?capacity:int -> unit -> t

val record : t -> Event.t -> unit

(** Events in recording order (cycle-monotone per context). *)
val events : t -> Event.t list

val iter : (Event.t -> unit) -> t -> unit

val length : t -> int

val dropped : t -> int

val reset : t -> unit

(** The registry fed by this stream (yield fired/skipped and load-level
    counters; stall, switch-cost and dispatch-length histograms). *)
val registry : t -> Registry.t

(** Engine hooks that feed the stream: loads, stalls, yields, opmarks.
    Compose into [Engine.config.hooks]. *)
val hooks : t -> Stallhide_cpu.Events.t

(** {2 Derived views used by attribution and exporters} *)

(** Per-pc totals of back-end stall cycles ([Stall] events), optionally
    re-keyed through [map] (e.g. new-pc to original-pc). *)
val stall_by_pc : ?map:(int -> int) -> t -> (int, int) Hashtbl.t

(** Per-pc demand-load executions ([Cache_access] events, hits
    included), optionally re-keyed through [map]. *)
val execs_by_pc : ?map:(int -> int) -> t -> (int, int) Hashtbl.t

(** Per-yield-site (fires, skips) from [Yield] events, keyed by pc. *)
val yields_by_pc : t -> (int, int * int) Hashtbl.t

(** Per-yield-site total switch cycles charged ([Context_switch] events
    with [at_pc >= 0]). *)
val switch_cycles_by_pc : t -> (int, int) Hashtbl.t

(** Dispatch spans as [(ctx, start, stop)], recording order. *)
val spans : t -> (int * int * int) list
