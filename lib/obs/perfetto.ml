open Stallhide_util
open Stallhide_mem

let instant ~name ~cat ~tid ~ts args =
  Json.Obj
    ([
       ("name", Json.String name);
       ("cat", Json.String cat);
       ("ph", Json.String "i");
       ("s", Json.String "t");
       ("pid", Json.Int 0);
       ("tid", Json.Int tid);
       ("ts", Json.Int ts);
     ]
    @ match args with [] -> [] | _ -> [ ("args", Json.Obj args) ])

(* [?tid] pins every event to one track (the per-core export); by
   default each event lands on its context's track. *)
let event_json ?tid e =
  let on default = match tid with Some t -> t | None -> default in
  match e with
  | Event.Dispatch { ctx; start; stop } ->
      Some
        (Json.Obj
           [
             ("name", Json.String (Printf.sprintf "ctx %d" ctx));
             ("cat", Json.String "dispatch");
             ("ph", Json.String "X");
             ("pid", Json.Int 0);
             ("tid", Json.Int (on ctx));
             ("ts", Json.Int start);
             ("dur", Json.Int (stop - start));
           ])
  | Event.Yield { ctx; pc; kind; fired; cycle } ->
      Some
        (instant ~name:(if fired then "yield" else "yield-skip") ~cat:"yield" ~tid:(on ctx)
           ~ts:cycle
           [
             ("pc", Json.Int pc);
             ("kind", Json.String (Event.kind_name kind));
             ("fired", Json.Bool fired);
           ])
  | Event.Cache_access { ctx; pc; addr; level; stall; queue; cycle } ->
      (* hits are numerous and carry no latency story; keep the trace loadable *)
      if stall = 0 then None
      else
        Some
          (instant ~name:("miss-" ^ Hierarchy.level_name level) ~cat:"mem" ~tid:(on ctx) ~ts:cycle
             ([ ("pc", Json.Int pc); ("addr", Json.Int addr); ("stall", Json.Int stall) ]
             @ if queue > 0 then [ ("queued", Json.Int queue) ] else []))
  | Event.Stall _ | Event.Frontend_stall _ -> None
  | Event.Op_retired { ctx; pc; cycle } ->
      Some (instant ~name:"op" ~cat:"op" ~tid:(on ctx) ~ts:cycle [ ("pc", Json.Int pc) ])
  | Event.Context_switch { from_ctx; to_ctx; at_pc; cost; cycle } ->
      Some
        (instant ~name:"switch" ~cat:"sched" ~tid:(on from_ctx) ~ts:cycle
           [ ("to", Json.Int to_ctx); ("pc", Json.Int at_pc); ("cost", Json.Int cost) ])
  | Event.Scavenger_escalation { ctx; pc; cycle } ->
      Some
        (instant ~name:"scavenger-escalation" ~cat:"sched" ~tid:(on ctx) ~ts:cycle
           [ ("pc", Json.Int pc) ])
  | Event.Watchdog { ctx; action; cycle } ->
      Some
        (instant
           ~name:("watchdog-" ^ Event.watchdog_action_name action)
           ~cat:"sched" ~tid:(on ctx) ~ts:cycle [])
  (* Logical spans render as async begin/end pairs keyed by ctx id:
     unlike "B"/"E" stack events, async spans may overlap freely on one
     track, which is exactly what concurrent requests on a core do. *)
  | Event.Span_open { ctx; name; cycle } ->
      Some
        (Json.Obj
           [
             ("name", Json.String name);
             ("cat", Json.String "span");
             ("ph", Json.String "b");
             ("id", Json.Int ctx);
             ("pid", Json.Int 0);
             ("tid", Json.Int (on ctx));
             ("ts", Json.Int cycle);
           ])
  | Event.Span_close { ctx; name; cycle } ->
      Some
        (Json.Obj
           [
             ("name", Json.String name);
             ("cat", Json.String "span");
             ("ph", Json.String "e");
             ("id", Json.Int ctx);
             ("pid", Json.Int 0);
             ("tid", Json.Int (on ctx));
             ("ts", Json.Int cycle);
           ])
  | Event.Steal { ctx; from_core; to_core; cycle } ->
      Some
        (instant ~name:"steal" ~cat:"sched" ~tid:(on ctx) ~ts:cycle
           [ ("from_core", Json.Int from_core); ("to_core", Json.Int to_core) ])

let to_json stream =
  let ctxs = Hashtbl.create 8 in
  Stream.iter (fun e -> Hashtbl.replace ctxs (Event.ctx_of e) ()) stream;
  let metadata =
    Hashtbl.fold (fun ctx () acc -> ctx :: acc) ctxs []
    |> List.sort compare
    |> List.map (fun ctx ->
           Json.Obj
             [
               ("name", Json.String "thread_name");
               ("ph", Json.String "M");
               ("pid", Json.Int 0);
               ("tid", Json.Int ctx);
               ("args", Json.Obj [ ("name", Json.String (Printf.sprintf "context %d" ctx)) ]);
             ])
  in
  let body = List.filter_map event_json (Stream.events stream) in
  Json.Obj
    [
      ("displayTimeUnit", Json.String "ns");
      ("traceEvents", Json.List (metadata @ body));
    ]

let write ~path stream = Json.write ~path (to_json stream)

let to_json_tracks tracks =
  let metadata =
    List.mapi
      (fun tid (label, _) ->
        Json.Obj
          [
            ("name", Json.String "thread_name");
            ("ph", Json.String "M");
            ("pid", Json.Int 0);
            ("tid", Json.Int tid);
            ("args", Json.Obj [ ("name", Json.String label) ]);
          ])
      tracks
  in
  let body =
    List.concat
      (List.mapi
         (fun tid (_, stream) -> List.filter_map (event_json ~tid) (Stream.events stream))
         tracks)
  in
  Json.Obj
    [
      ("displayTimeUnit", Json.String "ns");
      ("traceEvents", Json.List (metadata @ body));
    ]

let write_tracks ~path tracks = Json.write ~path (to_json_tracks tracks)
