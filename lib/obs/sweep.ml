open Stallhide_util

type sample = {
  count : int;
  mean : float;
  p50 : int;
  p90 : int;
  p99 : int;
  p999 : int;
  max : int;
}

type metric = Mean | P50 | P90 | P99 | P999

let all_metrics = [ Mean; P50; P90; P99; P999 ]

let metric_of_string = function
  | "mean" -> Some Mean
  | "p50" -> Some P50
  | "p90" -> Some P90
  | "p99" -> Some P99
  | "p999" | "p99.9" -> Some P999
  | _ -> None

let metric_name = function
  | Mean -> "mean"
  | P50 -> "p50"
  | P90 -> "p90"
  | P99 -> "p99"
  | P999 -> "p999"

let metric_value m s =
  match m with
  | Mean -> s.mean
  | P50 -> float_of_int s.p50
  | P90 -> float_of_int s.p90
  | P99 -> float_of_int s.p99
  | P999 -> float_of_int s.p999

type stat = { value : float; ci95 : float }

type series = { mean : stat; p50 : stat; p90 : stat; p99 : stat; p999 : stat }

let series_value m s =
  match m with Mean -> s.mean | P50 -> s.p50 | P90 -> s.p90 | P99 -> s.p99 | P999 -> s.p999

let stat_of xs =
  match xs with
  | [] -> { value = 0.0; ci95 = 0.0 }
  | [ x ] -> { value = x; ci95 = 0.0 }
  | _ ->
      let n = List.length xs in
      let fn = float_of_int n in
      let mean = List.fold_left ( +. ) 0.0 xs /. fn in
      let sq = List.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0.0 xs in
      let sd = sqrt (sq /. (fn -. 1.0)) in
      { value = mean; ci95 = 1.96 *. sd /. sqrt fn }

let series_of pick samples =
  let per m = stat_of (List.map (fun s -> pick m s) samples) in
  { mean = per Mean; p50 = per P50; p90 = per P90; p99 = per P99; p999 = per P999 }

let of_samples samples = series_of metric_value samples

let delta base perturbed =
  if List.length base <> List.length perturbed then
    invalid_arg "Sweep.delta: sample lists of different lengths";
  let diffs = List.combine base perturbed in
  let per m = stat_of (List.map (fun (b, p) -> metric_value m p -. metric_value m b) diffs) in
  { mean = per Mean; p50 = per P50; p90 = per P90; p99 = per P99; p999 = per P999 }

type row = { knob : string; detail : string; base : series; perturbed : series; delta : series }

type report = { seeds : int list; base : series; rows : row list }

let run ~seeds ~base ~knobs =
  if seeds = [] then invalid_arg "Sweep.run: no seeds";
  let base_samples = List.map base seeds in
  let base_series = of_samples base_samples in
  let rows =
    List.map
      (fun (knob, detail, f) ->
        let perturbed = List.map f seeds in
        {
          knob;
          detail;
          base = base_series;
          perturbed = of_samples perturbed;
          delta = delta base_samples perturbed;
        })
      knobs
  in
  { seeds; base = base_series; rows }

let ranked metric report =
  List.stable_sort
    (fun a b ->
      compare
        (Float.abs (series_value metric b.delta).value)
        (Float.abs (series_value metric a.delta).value))
    report.rows

let pp ~metric fmt report =
  let m = metric_name metric in
  Format.fprintf fmt "sweep over %d seed%s, ranked by |Δ%s|@." (List.length report.seeds)
    (if List.length report.seeds = 1 then "" else "s")
    m;
  Format.fprintf fmt "  base %s = %.1f@." m (series_value metric report.base).value;
  List.iter
    (fun row ->
      let d = series_value metric row.delta in
      Format.fprintf fmt "  %-24s Δ%s = %+.1f ± %.1f  (%s)@." row.knob m d.value d.ci95
        row.detail)
    (ranked metric report)

let stat_json s = Json.Obj [ ("value", Json.Float s.value); ("ci95", Json.Float s.ci95) ]

let series_json s =
  Json.Obj (List.map (fun m -> (metric_name m, stat_json (series_value m s))) all_metrics)

let to_json report =
  Json.Obj
    [
      ("seeds", Json.List (List.map (fun s -> Json.Int s) report.seeds));
      ("base", series_json report.base);
      ( "knobs",
        Json.List
          (List.map
             (fun row ->
               Json.Obj
                 [
                   ("knob", Json.String row.knob);
                   ("detail", Json.String row.detail);
                   ("base", series_json row.base);
                   ("perturbed", series_json row.perturbed);
                   ("delta", series_json row.delta);
                 ])
             report.rows) );
    ]
