open Stallhide_isa
open Stallhide_mem

type watchdog_action = Strike | Demote | Quarantine | Readmit

let watchdog_action_name = function
  | Strike -> "strike"
  | Demote -> "demote"
  | Quarantine -> "quarantine"
  | Readmit -> "readmit"

type t =
  | Yield of { ctx : int; pc : int; kind : Instr.yield_kind; fired : bool; cycle : int }
  | Cache_access of {
      ctx : int;
      pc : int;
      addr : int;
      level : Hierarchy.level;
      stall : int;
      queue : int;
      cycle : int;
    }
  | Stall of { ctx : int; pc : int; cycles : int; cycle : int }
  | Frontend_stall of { ctx : int; pc : int; cycles : int; cycle : int }
  | Op_retired of { ctx : int; pc : int; cycle : int }
  | Context_switch of { from_ctx : int; to_ctx : int; at_pc : int; cost : int; cycle : int }
  | Scavenger_escalation of { ctx : int; pc : int; cycle : int }
  | Watchdog of { ctx : int; action : watchdog_action; cycle : int }
  | Dispatch of { ctx : int; start : int; stop : int }
  | Span_open of { ctx : int; name : string; cycle : int }
  | Span_close of { ctx : int; name : string; cycle : int }
  | Steal of { ctx : int; from_core : int; to_core : int; cycle : int }

let ctx_of = function
  | Yield { ctx; _ }
  | Cache_access { ctx; _ }
  | Stall { ctx; _ }
  | Frontend_stall { ctx; _ }
  | Op_retired { ctx; _ }
  | Scavenger_escalation { ctx; _ }
  | Watchdog { ctx; _ }
  | Dispatch { ctx; _ }
  | Span_open { ctx; _ }
  | Span_close { ctx; _ }
  | Steal { ctx; _ } ->
      ctx
  | Context_switch { from_ctx; _ } -> from_ctx

let cycle_of = function
  | Yield { cycle; _ }
  | Cache_access { cycle; _ }
  | Stall { cycle; _ }
  | Frontend_stall { cycle; _ }
  | Op_retired { cycle; _ }
  | Context_switch { cycle; _ }
  | Scavenger_escalation { cycle; _ }
  | Watchdog { cycle; _ }
  | Span_open { cycle; _ }
  | Span_close { cycle; _ }
  | Steal { cycle; _ } ->
      cycle
  | Dispatch { start; _ } -> start

let kind_name = function Instr.Primary -> "primary" | Instr.Scavenger -> "scavenger"

let pp fmt = function
  | Yield { ctx; pc; kind; fired; cycle } ->
      Format.fprintf fmt "@%d ctx%d yield(%s)@%d %s" cycle ctx (kind_name kind) pc
        (if fired then "fired" else "skipped")
  | Cache_access { ctx; pc; addr; level; stall; queue; cycle } ->
      Format.fprintf fmt "@%d ctx%d load@%d addr=%d %s stall=%d%s" cycle ctx pc addr
        (Hierarchy.level_name level) stall
        (if queue > 0 then Printf.sprintf " queued=%d" queue else "")
  | Stall { ctx; pc; cycles; cycle } ->
      Format.fprintf fmt "@%d ctx%d stall@%d %d cyc" cycle ctx pc cycles
  | Frontend_stall { ctx; pc; cycles; cycle } ->
      Format.fprintf fmt "@%d ctx%d fe-stall@%d %d cyc" cycle ctx pc cycles
  | Op_retired { ctx; pc; cycle } -> Format.fprintf fmt "@%d ctx%d op@%d" cycle ctx pc
  | Context_switch { from_ctx; to_ctx; at_pc; cost; cycle } ->
      Format.fprintf fmt "@%d switch ctx%d->ctx%d at pc %d (%d cyc)" cycle from_ctx to_ctx at_pc
        cost
  | Scavenger_escalation { ctx; pc; cycle } ->
      Format.fprintf fmt "@%d ctx%d scavenger-escalation@%d" cycle ctx pc
  | Watchdog { ctx; action; cycle } ->
      Format.fprintf fmt "@%d ctx%d watchdog-%s" cycle ctx (watchdog_action_name action)
  | Dispatch { ctx; start; stop } -> Format.fprintf fmt "@%d ctx%d dispatch %d cyc" start ctx (stop - start)
  | Span_open { ctx; name; cycle } -> Format.fprintf fmt "@%d ctx%d span-open %s" cycle ctx name
  | Span_close { ctx; name; cycle } ->
      Format.fprintf fmt "@%d ctx%d span-close %s" cycle ctx name
  | Steal { ctx; from_core; to_core; cycle } ->
      Format.fprintf fmt "@%d ctx%d stolen core%d->core%d" cycle ctx from_core to_core
