(** Counter and histogram registry.

    Counters and histograms are keyed by name *per context* so consumers
    can attribute (how many yields did the primary take vs the
    scavengers?) and merged on demand for aggregate views. Histograms
    are log-bucketed (bucket [i] holds values [v] with
    [2^(i-1) <= v < 2^i]; bucket 0 holds [v <= 0]), so recording is O(1)
    and merging is bucket-wise addition — the shape CoroBase-style
    per-coroutine accounting needs at simulation speed. *)

type t

type counter

type histogram

val create : unit -> t

(** Get-or-create; the same [(name, ctx)] pair always returns the same
    counter. Use [ctx = -1] for context-less (global) series. *)
val counter : t -> ctx:int -> string -> counter

val incr : ?by:int -> counter -> unit

val histogram : t -> ctx:int -> string -> histogram

val observe : histogram -> int -> unit

(** {2 Reading} *)

val counter_value : counter -> int

(** Sum of a counter across all contexts; 0 when never written. *)
val total : t -> string -> int

(** Per-context values of a counter, sorted by context id. *)
val by_ctx : t -> string -> (int * int) list

(** Bucket-wise merge of a histogram across all contexts; [None] when
    never written. *)
val merged : t -> string -> histogram option

val hist_count : histogram -> int

val hist_sum : histogram -> int

val hist_max : histogram -> int

(** Upper bound of the bucket containing quantile [q] in [0,1] — an
    approximation good to 2x, like any log-bucketed sketch. *)
val hist_quantile : histogram -> float -> int

(** All registered series names (counters and histograms), sorted. *)
val names : t -> string list

val reset : t -> unit

(** {2 Namespaces}

    SMP runs register per-core series under ["<prefix><i>.<name>"]
    (e.g. ["core3.steals"]). The namespace view groups them back
    together: per-index values next to a machine-wide aggregate,
    without the writer having to maintain both. *)

(** Indices [i] for which some ["<prefix><i>.<name>"] series exists,
    sorted. *)
val namespace_indices : t -> prefix:string -> int list

(** Bare series names appearing under the namespace, sorted. *)
val namespace_names : t -> prefix:string -> string list

(** [namespace_total t ~prefix name] sums ["<prefix><i>.<name>"] over
    all indices (counters; 0 when absent). *)
val namespace_total : t -> prefix:string -> string -> int

(** [{aggregate: {name: total}, per: {"<i>": {name: total}}}] over the
    namespace's counters. *)
val namespace_json : t -> prefix:string -> Stallhide_util.Json.t

(** Stable machine-readable dump: counters as
    [{total, by_ctx}] and histograms as
    [{count, sum, max, p50, p99, buckets}] (merged across contexts). *)
val to_json : t -> Stallhide_util.Json.t

(** Prometheus text-exposition rendering of the same registry: each
    counter becomes ["stallhide_<name>{ctx=\"<i>\"} v"] lines (one per
    context), each histogram (merged across contexts) the standard
    cumulative [_bucket{le=...}] / [_sum] / [_count] triplet with [le]
    bounds at the log-bucket uppers. Dots/dashes in names map to
    underscores ("load.stall" → "stallhide_load_stall"), so distinct
    registry names that differ only in separator collide — fine for
    the fixed series vocabulary this simulator emits. *)
val to_prometheus : t -> string
