(** Deterministic one-factor-at-a-time differential sweeps.

    The driver re-runs a seeded workload under single-knob
    perturbations (L3 latency doubled, half the scavengers, one core
    fewer, ...) and reports the full latency-summary delta per knob,
    with repeated-seed confidence intervals. It is workload-agnostic:
    callers hand it closures from seed to a latency {!sample}; the
    [lib/why] layer wires those closures to real simulator runs.

    Everything is deterministic given the seed list: the same seeds and
    the same runner closures produce bit-identical reports. *)

(** The slice of [Latency.summary] the analysis layers consume
    (duplicated here because [lib/runtime] sits above [lib/obs] in the
    dependency DAG — the runtime's tracer feeds our streams). *)
type sample = {
  count : int;
  mean : float;
  p50 : int;
  p90 : int;
  p99 : int;
  p999 : int;
  max : int;
}

type metric = Mean | P50 | P90 | P99 | P999

val all_metrics : metric list

(** ["mean"], ["p50"], ["p90"], ["p99"], ["p999"] (also accepts
    ["p99.9"]). *)
val metric_of_string : string -> metric option

val metric_name : metric -> string

val metric_value : metric -> sample -> float

(** A statistic across repeated seeds: the across-seed mean and a
    normal-approximation 95% confidence half-width
    ([1.96 * sd / sqrt n], sample standard deviation; 0 when [n = 1]).
    With the handful of repeats a sweep affords, read [ci95] as an
    error bar, not a guarantee. *)
type stat = { value : float; ci95 : float }

(** One {!stat} per metric. *)
type series = { mean : stat; p50 : stat; p90 : stat; p99 : stat; p999 : stat }

val series_value : metric -> series -> stat

(** [of_samples samples] — across-seed stats of each metric. *)
val of_samples : sample list -> series

(** [delta base perturbed] — stats of the per-seed paired differences
    [perturbed_i - base_i] (pairing removes the seed-to-seed variance
    both arms share).
    @raise Invalid_argument when the lists' lengths differ. *)
val delta : sample list -> sample list -> series

type row = {
  knob : string;  (** short id, e.g. ["l3.latency*2"] *)
  detail : string;  (** human description of the perturbation *)
  base : series;
  perturbed : series;
  delta : series;  (** perturbed - base, paired per seed *)
}

type report = { seeds : int list; base : series; rows : row list }

(** [run ~seeds ~base ~knobs] runs the base closure once per seed, each
    knob closure once per seed, and assembles the report. Knob order is
    preserved in [report.rows]. *)
val run :
  seeds:int list ->
  base:(int -> sample) ->
  knobs:(string * string * (int -> sample)) list ->
  report

(** Rows sorted by descending absolute delta of [metric]. *)
val ranked : metric -> report -> row list

val pp : metric:metric -> Format.formatter -> report -> unit

val to_json : report -> Stallhide_util.Json.t
