(** Yield-site attribution: per instrumented site, what the gain/cost
    model promised versus what the simulation delivered.

    Sites are the [Yield]/[Yield_cond] instructions of the instrumented
    program; each covers the selected loads (and accelerator waits)
    between it and the next yield — exactly the group the primary pass
    hoisted prefetches for. Measured numbers come from two runs over the
    same workload: the stall the covered loads still pay in the
    instrumented run ([residual_stall]) against what they paid
    uninstrumented ([baseline_stall]), and the context-switch cycles the
    site was charged. The model's promise is {!Gain_cost.expected_gain}
    evaluated with the same estimates the selection used. *)

open Stallhide_isa
open Stallhide_binopt

type site = {
  yield_pc : int;  (** instrumented-program pc of the yield *)
  kind : Instr.yield_kind;
  covered : int list;  (** covered load/wait sites, original pcs *)
  fires : int;
  skips : int;  (** conditional/scavenger yields that fell through *)
  baseline_stall : int;  (** covered sites' stall, uninstrumented run *)
  residual_stall : int;  (** covered sites' stall, instrumented run *)
  hidden_stall : int;  (** [baseline_stall - residual_stall] *)
  switch_paid : int;  (** switch cycles charged at this site *)
  predicted_gain : float;  (** model's total expected cycles saved *)
  measured_gain : int;  (** [hidden_stall - switch_paid] *)
}

type report = {
  sites : site list;  (** ascending [yield_pc] *)
  total_baseline_stall : int;  (** all pcs, not just covered ones *)
  total_residual_stall : int;
  baseline_dropped : int;  (** events lost to buffer caps: attribution *)
  dropped : int;  (** under-counts when either is non-zero *)
}

(** Static covering map over an instrumented program: each yield-family
    instruction paired with the selected original-pc loads/waits it
    covers (the loads between it and the next yield). This is the
    site → covered-loads mapping the causal layer scopes per-site
    counterfactuals with. *)
val covering_sites :
  Program.t ->
  orig_of_new:int array ->
  selected:int list ->
  (int * Instr.yield_kind * int list) list

(** [build] pairs a baseline stream (uninstrumented run) with the
    instrumented run's stream. [orig_of_new] is the pc map from
    {!Primary_pass.run}; [selected] the sites it chose (original pcs);
    [estimates] the same estimator the selection used. *)
val build :
  program:Program.t ->
  orig_of_new:int array ->
  selected:int list ->
  machine:Gain_cost.machine ->
  estimates:Gain_cost.estimates ->
  baseline:Stream.t ->
  Stream.t ->
  report

val pp_report : Format.formatter -> report -> unit

val to_json : report -> Stallhide_util.Json.t
