open Stallhide_util

let buckets = 48

type counter = { mutable v : int }

type histogram = {
  mutable count : int;
  mutable sum : int;
  mutable max : int;
  slots : int array;  (** [buckets] log2 slots *)
}

type t = {
  counters : (string * int, counter) Hashtbl.t;
  histograms : (string * int, histogram) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 32; histograms = Hashtbl.create 32 }

let counter t ~ctx name =
  match Hashtbl.find_opt t.counters (name, ctx) with
  | Some c -> c
  | None ->
      let c = { v = 0 } in
      Hashtbl.add t.counters (name, ctx) c;
      c

let incr ?(by = 1) c = c.v <- c.v + by

let fresh_hist () = { count = 0; sum = 0; max = min_int; slots = Array.make buckets 0 }

let histogram t ~ctx name =
  match Hashtbl.find_opt t.histograms (name, ctx) with
  | Some h -> h
  | None ->
      let h = fresh_hist () in
      Hashtbl.add t.histograms (name, ctx) h;
      h

(* slot 0 holds v <= 0; slot i holds 2^(i-1) <= v < 2^i *)
let slot_of v =
  if v <= 0 then 0
  else begin
    let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
    min (buckets - 1) (bits 0 v)
  end

let slot_upper i = if i = 0 then 0 else (1 lsl i) - 1

let observe h v =
  h.count <- h.count + 1;
  h.sum <- h.sum + v;
  if v > h.max then h.max <- v;
  let s = h.slots in
  let i = slot_of v in
  s.(i) <- s.(i) + 1

let counter_value c = c.v

let total t name =
  Hashtbl.fold (fun (n, _) c acc -> if String.equal n name then acc + c.v else acc) t.counters 0

let by_ctx t name =
  Hashtbl.fold
    (fun (n, ctx) c acc -> if String.equal n name then (ctx, c.v) :: acc else acc)
    t.counters []
  |> List.sort compare

let merged t name =
  let acc = ref None in
  Hashtbl.iter
    (fun (n, _) h ->
      if String.equal n name then begin
        let m = match !acc with Some m -> m | None ->
          let m = fresh_hist () in
          acc := Some m;
          m
        in
        m.count <- m.count + h.count;
        m.sum <- m.sum + h.sum;
        if h.max > m.max then m.max <- h.max;
        Array.iteri (fun i v -> m.slots.(i) <- m.slots.(i) + v) h.slots
      end)
    t.histograms;
  !acc

let hist_count h = h.count

let hist_sum h = h.sum

let hist_max h = if h.count = 0 then 0 else h.max

let hist_quantile h q =
  if h.count = 0 then 0
  else begin
    let rank = int_of_float (ceil (q *. float_of_int h.count)) in
    let rank = Stdlib.max 1 (Stdlib.min h.count rank) in
    let rec walk i seen =
      if i >= buckets then slot_upper (buckets - 1)
      else
        let seen = seen + h.slots.(i) in
        if seen >= rank then slot_upper i else walk (i + 1) seen
    in
    walk 0 0
  end

let names t =
  let tbl = Hashtbl.create 32 in
  Hashtbl.iter (fun (n, _) _ -> Hashtbl.replace tbl n ()) t.counters;
  Hashtbl.iter (fun (n, _) _ -> Hashtbl.replace tbl n ()) t.histograms;
  Hashtbl.fold (fun n () acc -> n :: acc) tbl [] |> List.sort compare

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.histograms

(* "core3.steals" with prefix "core" -> Some (3, "steals"). *)
let split_namespaced ~prefix name =
  let pl = String.length prefix in
  let nl = String.length name in
  if nl <= pl || not (String.sub name 0 pl = prefix) then None
  else begin
    let rec digits i = if i < nl && name.[i] >= '0' && name.[i] <= '9' then digits (i + 1) else i in
    let d = digits pl in
    if d = pl || d >= nl || name.[d] <> '.' || d + 1 = nl then None
    else Some (int_of_string (String.sub name pl (d - pl)), String.sub name (d + 1) (nl - d - 1))
  end

let namespace_indices t ~prefix =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun n ->
      match split_namespaced ~prefix n with
      | Some (i, _) -> Hashtbl.replace tbl i ()
      | None -> ())
    (names t);
  Hashtbl.fold (fun i () acc -> i :: acc) tbl [] |> List.sort compare

let namespace_names t ~prefix =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun n ->
      match split_namespaced ~prefix n with
      | Some (_, bare) -> Hashtbl.replace tbl bare ()
      | None -> ())
    (names t);
  Hashtbl.fold (fun n () acc -> n :: acc) tbl [] |> List.sort compare

let namespace_total t ~prefix name =
  List.fold_left
    (fun acc i -> acc + total t (Printf.sprintf "%s%d.%s" prefix i name))
    0
    (namespace_indices t ~prefix)

let namespace_json t ~prefix =
  let indices = namespace_indices t ~prefix in
  let bare = namespace_names t ~prefix in
  let aggregate =
    List.map (fun n -> (n, Json.Int (namespace_total t ~prefix n))) bare
  in
  let per =
    List.map
      (fun i ->
        ( string_of_int i,
          Json.Obj
            (List.filter_map
               (fun n ->
                 let full = Printf.sprintf "%s%d.%s" prefix i n in
                 if List.mem full (names t) then Some (n, Json.Int (total t full)) else None)
               bare) ))
      indices
  in
  Json.Obj [ ("aggregate", Json.Obj aggregate); ("per", Json.Obj per) ]

(* Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Dots and dashes
   become underscores; "a.b" and "a_b" therefore collide — acceptable
   for our fixed vocabulary. *)
let prom_name name =
  "stallhide_"
  ^ String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
        | _ -> '_')
      name

let to_prometheus t =
  let buf = Buffer.create 4096 in
  let counter_names, hist_names =
    let has tbl name = Hashtbl.fold (fun (n, _) _ acc -> acc || String.equal n name) tbl false in
    List.partition (fun n -> has t.counters n) (names t)
  in
  List.iter
    (fun name ->
      let m = prom_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" m);
      List.iter
        (fun (ctx, v) -> Buffer.add_string buf (Printf.sprintf "%s{ctx=\"%d\"} %d\n" m ctx v))
        (by_ctx t name))
    counter_names;
  List.iter
    (fun name ->
      match merged t name with
      | None -> ()
      | Some h ->
          let m = prom_name name in
          Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" m);
          let last =
            let rec go i = if i < 0 then 0 else if h.slots.(i) > 0 then i else go (i - 1) in
            go (buckets - 1)
          in
          let cum = ref 0 in
          for i = 0 to last do
            cum := !cum + h.slots.(i);
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" m (slot_upper i) !cum)
          done;
          Buffer.add_string buf (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" m h.count);
          Buffer.add_string buf (Printf.sprintf "%s_sum %d\n" m h.sum);
          Buffer.add_string buf (Printf.sprintf "%s_count %d\n" m h.count))
    hist_names;
  Buffer.contents buf

let to_json t =
  let counter_names, hist_names =
    let has tbl name = Hashtbl.fold (fun (n, _) _ acc -> acc || String.equal n name) tbl false in
    List.partition (fun n -> has t.counters n) (names t)
  in
  let counters =
    List.map
      (fun name ->
        ( name,
          Json.Obj
            [
              ("total", Json.Int (total t name));
              ( "by_ctx",
                Json.Obj
                  (List.map (fun (ctx, v) -> (string_of_int ctx, Json.Int v)) (by_ctx t name)) );
            ] ))
      counter_names
  in
  let histograms =
    List.filter_map
      (fun name ->
        match merged t name with
        | None -> None
        | Some h ->
            let last =
              let rec go i = if i < 0 then 0 else if h.slots.(i) > 0 then i else go (i - 1) in
              go (buckets - 1)
            in
            Some
              ( name,
                Json.Obj
                  [
                    ("count", Json.Int h.count);
                    ("sum", Json.Int h.sum);
                    ("max", Json.Int (hist_max h));
                    ("p50", Json.Int (hist_quantile h 0.5));
                    ("p99", Json.Int (hist_quantile h 0.99));
                    ( "buckets",
                      Json.List
                        (List.init (last + 1) (fun i ->
                             Json.Obj
                               [
                                 ("le", Json.Int (slot_upper i));
                                 ("count", Json.Int h.slots.(i));
                               ])) );
                  ] ))
      hist_names
  in
  Json.Obj [ ("counters", Json.Obj counters); ("histograms", Json.Obj histograms) ]
