open Stallhide_util

type request = { rid : int; ctx : int; core : int; arrival : int; finished : int }

type breakdown = {
  rid : int;
  core : int;
  latency : int;
  queueing : int;
  compute : int;
  stall : int;
  contention : int;
  switch : int;
  offcore : int;
}

let breakdown ~events (r : request) =
  if r.finished < 0 then None
  else begin
    let first_dispatch = ref max_int in
    let oncore = ref 0 in
    let stall = ref 0 in
    let contention = ref 0 in
    let switch = ref 0 in
    List.iter
      (fun e ->
        match e with
        | Event.Dispatch { ctx; start; stop } when ctx = r.ctx ->
            if start < !first_dispatch then first_dispatch := start;
            oncore := !oncore + (stop - start)
        | Event.Stall { ctx; cycles; _ } when ctx = r.ctx -> stall := !stall + cycles
        | Event.Cache_access { ctx; queue; _ } when ctx = r.ctx ->
            contention := !contention + queue
        | Event.Context_switch { from_ctx; cost; _ } when from_ctx = r.ctx ->
            switch := !switch + cost
        | _ -> ())
      events;
    let latency = r.finished - r.arrival in
    let queueing =
      if !first_dispatch = max_int then latency
      else max 0 (min latency (!first_dispatch - r.arrival))
    in
    let stall = !stall in
    let switch = !switch in
    let compute = max 0 (!oncore - stall - switch) in
    let offcore = max 0 (latency - queueing - compute - stall - switch) in
    Some
      {
        rid = r.rid;
        core = r.core;
        latency;
        queueing;
        compute;
        stall;
        contention = min !contention stall;
        switch;
        offcore;
      }
  end

type totals = {
  n : int;
  latency : int;
  queueing : int;
  compute : int;
  stall : int;
  contention : int;
  switch : int;
  offcore : int;
}

let totals bs =
  List.fold_left
    (fun acc (b : breakdown) ->
      {
        n = acc.n + 1;
        latency = acc.latency + b.latency;
        queueing = acc.queueing + b.queueing;
        compute = acc.compute + b.compute;
        stall = acc.stall + b.stall;
        contention = acc.contention + b.contention;
        switch = acc.switch + b.switch;
        offcore = acc.offcore + b.offcore;
      })
    { n = 0; latency = 0; queueing = 0; compute = 0; stall = 0; contention = 0; switch = 0; offcore = 0 }
    bs

let tail ~frac bs =
  match bs with
  | [] -> []
  | _ ->
      let sorted =
        List.stable_sort
          (fun (a : breakdown) (b : breakdown) -> compare (b.latency, a.rid) (a.latency, b.rid))
          bs
      in
      let n = List.length sorted in
      let keep = max 1 (int_of_float (Float.round (frac *. float_of_int n))) in
      List.filteri (fun i _ -> i < keep) sorted

let pair_spans events =
  let evs =
    List.stable_sort (fun a b -> compare (Event.cycle_of a) (Event.cycle_of b)) events
  in
  let open_tbl = Hashtbl.create 16 in
  let items = ref [] in
  List.iter
    (fun e ->
      match e with
      | Event.Span_open { ctx; name; cycle } ->
          let cell = ref None in
          items := (ctx, name, cycle, cell) :: !items;
          let q =
            match Hashtbl.find_opt open_tbl (ctx, name) with
            | Some q -> q
            | None ->
                let q = Queue.create () in
                Hashtbl.add open_tbl (ctx, name) q;
                q
          in
          Queue.push cell q
      | Event.Span_close { ctx; name; cycle } -> (
          match Hashtbl.find_opt open_tbl (ctx, name) with
          | Some q when not (Queue.is_empty q) -> Queue.pop q := Some cycle
          | _ -> () (* unmatched close: dropped *))
      | _ -> ())
    evs;
  List.rev_map (fun (ctx, name, cycle, cell) -> (ctx, name, cycle, !cell)) !items

let pct part whole = if whole = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole

let pp_totals fmt t =
  Format.fprintf fmt
    "%d request%s, %d total cycles:@.  queueing %d (%.1f%%)  compute %d (%.1f%%)  stall %d \
     (%.1f%%, of which %d contention)  switch %d (%.1f%%)  offcore %d (%.1f%%)"
    t.n
    (if t.n = 1 then "" else "s")
    t.latency t.queueing (pct t.queueing t.latency) t.compute (pct t.compute t.latency) t.stall
    (pct t.stall t.latency) t.contention t.switch (pct t.switch t.latency) t.offcore
    (pct t.offcore t.latency)

let to_json t =
  Json.Obj
    [
      ("requests", Json.Int t.n);
      ("latency", Json.Int t.latency);
      ("queueing", Json.Int t.queueing);
      ("compute", Json.Int t.compute);
      ("stall", Json.Int t.stall);
      ("contention", Json.Int t.contention);
      ("switch", Json.Int t.switch);
      ("offcore", Json.Int t.offcore);
    ]
