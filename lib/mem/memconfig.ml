type level_cfg = { size_bytes : int; ways : int; latency : int }

type t = {
  line_bytes : int;
  l1 : level_cfg;
  l2 : level_cfg;
  l3 : level_cfg;
  dram_latency : int;
  accel_latency : int;
  icache : level_cfg option;
  prefetch_issue_cost : int;
}

let default =
  {
    line_bytes = 64;
    l1 = { size_bytes = 16 * 1024; ways = 4; latency = 4 };
    l2 = { size_bytes = 64 * 1024; ways = 8; latency = 14 };
    l3 = { size_bytes = 512 * 1024; ways = 8; latency = 50 };
    dram_latency = 200;
    accel_latency = 150;
    icache = None;
    prefetch_issue_cost = 1;
  }

let with_dram_latency t cycles = { t with dram_latency = cycles }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let validate t =
  if not (is_pow2 t.line_bytes) then invalid_arg "Memconfig: line_bytes must be a power of two";
  let check name (c : level_cfg) =
    if c.size_bytes mod (t.line_bytes * c.ways) <> 0 then
      invalid_arg (Printf.sprintf "Memconfig: %s size not divisible by ways*line" name);
    if not (is_pow2 (c.size_bytes / (t.line_bytes * c.ways))) then
      invalid_arg (Printf.sprintf "Memconfig: %s set count must be a power of two" name);
    if c.latency <= 0 then invalid_arg (Printf.sprintf "Memconfig: %s latency must be positive" name)
  in
  check "l1" t.l1;
  check "l2" t.l2;
  check "l3" t.l3;
  (match t.icache with Some c -> check "icache" c | None -> ());
  if not (t.l1.latency <= t.l2.latency && t.l2.latency <= t.l3.latency) then
    invalid_arg "Memconfig: cache latencies must be monotone up the hierarchy";
  if t.dram_latency <= 0 then invalid_arg "Memconfig: dram latency must be positive";
  if t.accel_latency <= 0 then invalid_arg "Memconfig: accel latency must be positive"
