type level = L1 | L2 | L3 | Dram

let level_name = function L1 -> "L1" | L2 -> "L2" | L3 -> "L3" | Dram -> "DRAM"

(* Dense level codes for the allocation-free fast path. *)
let code_l1 = 0

let code_l2 = 1

let code_l3 = 2

let code_dram = 3

let level_of_code = function 0 -> L1 | 1 -> L2 | 2 -> L3 | _ -> Dram

let level_code = function L1 -> code_l1 | L2 -> code_l2 | L3 -> code_l3 | Dram -> code_dram

type result = { level : level; latency : int; stall : int; queued : int }

type spike = { from_cycle : int; until_cycle : int; l3_mult : int; dram_mult : int }

type port =
  | Private
  | Direct of Shared_l3.t * int  (* (port, this core's id) *)
  | Windowed of Shared_l3.wport

type t = {
  cfg : Memconfig.t;
  l1 : Cache.t;
  l2 : Cache.t;
  l3 : Cache.t;
  icache : Cache.t option;
  stats : Mem_stats.t;
  mutable spike : spike option;
  mutable level_scale : (level * int) option;  (* counterfactual: (level, percent) *)
  port : port;
  (* probe scratch: set by [probe_into], read by the alloc-free access
     path and repacked into [result] by [access] *)
  mutable p_level : int;
  mutable p_latency : int;
  mutable p_inflight : bool;
  mutable p_queued : int;
}

let make cfg ~l1 ~l2 ~l3 ~port =
  {
    cfg;
    l1;
    l2;
    l3;
    icache =
      (match cfg.Memconfig.icache with
      | Some c -> Some (Cache.create ~name:"I" ~line_bytes:cfg.Memconfig.line_bytes c)
      | None -> None);
    stats = Mem_stats.create ();
    spike = None;
    level_scale = None;
    port;
    p_level = 0;
    p_latency = 0;
    p_inflight = false;
    p_queued = 0;
  }

let create cfg =
  Memconfig.validate cfg;
  make cfg
    ~l1:(Cache.create ~name:"L1" ~line_bytes:cfg.line_bytes cfg.l1)
    ~l2:(Cache.create ~name:"L2" ~line_bytes:cfg.line_bytes cfg.l2)
    ~l3:(Cache.create ~name:"L3" ~line_bytes:cfg.line_bytes cfg.l3)
    ~port:Private

let attach_core cfg ~shared =
  Memconfig.validate cfg;
  let l1 = Cache.create ~name:"L1" ~line_bytes:cfg.Memconfig.line_bytes cfg.Memconfig.l1 in
  let l2 = Cache.create ~name:"L2" ~line_bytes:cfg.Memconfig.line_bytes cfg.Memconfig.l2 in
  let invalidate addr =
    let k1 = if Cache.invalidate l1 addr then 1 else 0 in
    let k2 = if Cache.invalidate l2 addr then 1 else 0 in
    k1 + k2
  in
  let core = Shared_l3.attach shared ~invalidate in
  (l1, l2, core)

let create_core cfg ~shared =
  let l1, l2, core = attach_core cfg ~shared in
  make cfg ~l1 ~l2 ~l3:(Shared_l3.cache shared) ~port:(Direct (shared, core))

let create_core_windowed cfg ~shared =
  let l1, l2, core = attach_core cfg ~shared in
  let wport = Shared_l3.open_wport shared ~core in
  make cfg ~l1 ~l2 ~l3:(Shared_l3.wport_cache wport) ~port:(Windowed wport)

let config t = t.cfg

let core_id t = match t.port with Direct (_, c) -> Some c | Private | Windowed _ -> None

let shared_port t = match t.port with Direct (p, _) -> Some p | Private | Windowed _ -> None

let wport t = match t.port with Windowed w -> Some w | Private | Direct _ -> None

let inject_spike t ~from_cycle ~until_cycle ~l3_mult ~dram_mult =
  if from_cycle < 0 || until_cycle < from_cycle then
    invalid_arg "Hierarchy.inject_spike: bad window";
  if l3_mult < 1 || dram_mult < 1 then
    invalid_arg "Hierarchy.inject_spike: multipliers must be >= 1";
  t.spike <- Some { from_cycle; until_cycle; l3_mult; dram_mult }

let clear_spike t = t.spike <- None

let set_level_scale t lvl ~percent =
  if percent < 0 then invalid_arg "Hierarchy.set_level_scale: percent must be >= 0";
  t.level_scale <- Some (lvl, percent)

let clear_level_scale t = t.level_scale <- None

(* Apply the armed counterfactual: keep the unavoidable L1 access cost,
   scale only the beyond-L1 portion of an access served by the selected
   level. [percent = 0] answers "what if this level were as fast as
   L1?"; [percent = 50] halves its miss penalty. *)
let counterfactual t lcode latency =
  match t.level_scale with
  | Some (lvl, percent) when level_code lvl = lcode ->
      let base = t.cfg.l1.latency in
      base + ((max 0 (latency - base)) * percent / 100)
  | _ -> latency

let spike_active t ~now =
  match t.spike with
  | Some s -> now >= s.from_cycle && now < s.until_cycle
  | None -> false

(* Below-L2 service latency with any active spike applied; in-flight
   waits are not re-scaled (the fill was priced when it started). *)
let l3_latency t ~now =
  match t.spike with
  | Some s when now >= s.from_cycle && now < s.until_cycle -> t.cfg.l3.latency * s.l3_mult
  | _ -> t.cfg.l3.latency

let dram_latency t ~now =
  match t.spike with
  | Some s when now >= s.from_cycle && now < s.until_cycle -> t.cfg.dram_latency * s.dram_mult
  | _ -> t.cfg.dram_latency

let l3_lookup_code t ~now addr =
  let c = Cache.lookup_code t.l3 ~now addr in
  (match t.port with
  | Windowed w -> Shared_l3.wport_log_lookup w ~now ~addr
  | Private | Direct _ -> ());
  c

(* Classify an access without filling: serving level, total latency, and
   whether the wait came from an in-flight fill — written into the
   [p_*] scratch fields so the hot path allocates nothing. *)
let probe_into t ~now addr =
  let c1 = Cache.lookup_code t.l1 ~now addr in
  if c1 >= 0 then begin
    t.p_level <- code_l1;
    t.p_latency <- (if c1 = 0 then t.cfg.l1.latency else max t.cfg.l1.latency (c1 - now));
    t.p_inflight <- c1 > 0
  end
  else
    let c2 = Cache.lookup_code t.l2 ~now addr in
    if c2 >= 0 then begin
      t.p_level <- code_l2;
      t.p_latency <- (if c2 = 0 then t.cfg.l2.latency else max t.cfg.l2.latency (c2 - now));
      t.p_inflight <- c2 > 0
    end
    else
      let c3 = l3_lookup_code t ~now addr in
      if c3 >= 0 then begin
        t.p_level <- code_l3;
        t.p_latency <- (if c3 = 0 then l3_latency t ~now else max t.cfg.l3.latency (c3 - now));
        t.p_inflight <- c3 > 0
      end
      else begin
        t.p_level <- code_dram;
        t.p_latency <- dram_latency t ~now;
        t.p_inflight <- false
      end

let l3_insert t ~now ~ready_at addr =
  Cache.insert t.l3 ~now ~ready_at addr;
  match t.port with
  | Windowed w -> Shared_l3.wport_log_insert w ~now ~ready_at ~addr
  | Private | Direct _ -> ()

(* Fill all levels above the serving one. *)
let fill t ~ready_at ~now lcode addr =
  if lcode >= code_l2 then Cache.insert t.l1 ~now ~ready_at addr;
  if lcode >= code_l3 then Cache.insert t.l2 ~now ~ready_at addr;
  if lcode >= code_dram then l3_insert t ~now ~ready_at addr

(* Port admission on the shared L3: a fresh below-L2 service consumes
   one slot of the machine-wide window budget and may be queued into a
   later window. In-flight waits were admitted when the fill started. *)
let admission t ~now lcode ~inflight =
  if inflight || lcode < code_l3 then 0
  else
    match t.port with
    | Direct (port, _) -> Shared_l3.admit port ~now
    | Windowed w -> Shared_l3.wport_admit w ~now
    | Private -> 0

(* Alloc-free demand load: returns the total load-to-use latency and
   leaves the serving level / queueing delay in [p_level] / [p_queued].
   [access] wraps it into a [result] record; both paths share this one
   implementation so they cannot diverge. *)
let access_latency t ~now addr =
  probe_into t ~now addr;
  let lcode = t.p_level in
  let queued = admission t ~now lcode ~inflight:t.p_inflight in
  let latency = counterfactual t lcode (t.p_latency + queued) in
  t.p_queued <- queued;
  let s = t.stats in
  s.demand_accesses <- s.demand_accesses + 1;
  if lcode = code_l1 then s.l1_hits <- s.l1_hits + 1
  else if lcode = code_l2 then s.l2_hits <- s.l2_hits + 1
  else if lcode = code_l3 then s.l3_hits <- s.l3_hits + 1
  else s.dram_accesses <- s.dram_accesses + 1;
  if t.p_inflight then s.inflight_hits <- s.inflight_hits + 1;
  (* The demand load itself pays [latency]; by the time the core can
     issue another access, the line is usable, so fill with [now]. *)
  fill t ~ready_at:now ~now lcode addr;
  latency

let last_level t = t.p_level

let last_queued t = t.p_queued

let access t ~now addr =
  let latency = access_latency t ~now addr in
  {
    level = level_of_code t.p_level;
    latency;
    stall = max 0 (latency - t.cfg.l1.latency);
    queued = t.p_queued;
  }

let prefetch t ~now addr =
  let s = t.stats in
  s.prefetches <- s.prefetches + 1;
  if Cache.resident t.l1 ~now addr then s.useless_prefetches <- s.useless_prefetches + 1
  else begin
    probe_into t ~now addr;
    let lcode = t.p_level in
    if lcode > code_l1 then begin
      (* an L1 classification here means in flight into L1 already:
         keep the earlier fill *)
      let latency =
        counterfactual t lcode (t.p_latency + admission t ~now lcode ~inflight:t.p_inflight)
      in
      fill t ~ready_at:(now + latency) ~now lcode addr
    end
  end

let write t ~now:_ addr =
  match t.port with
  | Direct (port, core) -> Shared_l3.write port ~core ~addr
  | Windowed w -> Shared_l3.wport_write w ~addr
  | Private -> ()

(* Alloc-free deepest-cached test: level code, or -1 when absent. *)
let resident_code t ~now addr =
  if Cache.resident t.l1 ~now addr then code_l1
  else if Cache.resident t.l2 ~now addr then code_l2
  else if Cache.resident t.l3 ~now addr then code_l3
  else -1

let resident t ~now addr =
  match resident_code t ~now addr with
  | 0 -> Some L1
  | 1 -> Some L2
  | 2 -> Some L3
  | _ -> None

let fetch t ~now pc =
  match t.icache with
  | None -> 0
  | Some ic -> (
      let addr = pc * 4 in
      let c = Cache.lookup_code ic ~now addr in
      (* icache fills always complete instantly (ready_at = now), so an
         In_flight line can only mean the caller's clock restarted:
         treat it as present *)
      if c >= 0 then 0
      else begin
        Cache.insert ic ~now ~ready_at:now addr;
        match t.cfg.icache with Some c -> c.latency | None -> 0
      end)

let stats t = t.stats

let reset_stats t =
  Mem_stats.reset t.stats;
  Cache.reset_stats t.l1;
  Cache.reset_stats t.l2;
  Cache.reset_stats t.l3;
  match t.icache with Some ic -> Cache.reset_stats ic | None -> ()
