type level = L1 | L2 | L3 | Dram

let level_name = function L1 -> "L1" | L2 -> "L2" | L3 -> "L3" | Dram -> "DRAM"

type result = { level : level; latency : int; stall : int; queued : int }

type spike = { from_cycle : int; until_cycle : int; l3_mult : int; dram_mult : int }

type t = {
  cfg : Memconfig.t;
  l1 : Cache.t;
  l2 : Cache.t;
  l3 : Cache.t;
  icache : Cache.t option;
  stats : Mem_stats.t;
  mutable spike : spike option;
  mutable level_scale : (level * int) option;  (* counterfactual: (level, percent) *)
  shared : (Shared_l3.t * int) option;  (* (port, this core's id) *)
}

let create cfg =
  Memconfig.validate cfg;
  {
    cfg;
    l1 = Cache.create ~name:"L1" ~line_bytes:cfg.line_bytes cfg.l1;
    l2 = Cache.create ~name:"L2" ~line_bytes:cfg.line_bytes cfg.l2;
    l3 = Cache.create ~name:"L3" ~line_bytes:cfg.line_bytes cfg.l3;
    icache =
      (match cfg.icache with
      | Some c -> Some (Cache.create ~name:"I" ~line_bytes:cfg.line_bytes c)
      | None -> None);
    stats = Mem_stats.create ();
    spike = None;
    level_scale = None;
    shared = None;
  }

let create_core cfg ~shared =
  Memconfig.validate cfg;
  let l1 = Cache.create ~name:"L1" ~line_bytes:cfg.line_bytes cfg.l1 in
  let l2 = Cache.create ~name:"L2" ~line_bytes:cfg.line_bytes cfg.l2 in
  let invalidate addr =
    let k1 = if Cache.invalidate l1 addr then 1 else 0 in
    let k2 = if Cache.invalidate l2 addr then 1 else 0 in
    k1 + k2
  in
  let core = Shared_l3.attach shared ~invalidate in
  {
    cfg;
    l1;
    l2;
    l3 = Shared_l3.cache shared;
    icache =
      (match cfg.icache with
      | Some c -> Some (Cache.create ~name:"I" ~line_bytes:cfg.line_bytes c)
      | None -> None);
    stats = Mem_stats.create ();
    spike = None;
    level_scale = None;
    shared = Some (shared, core);
  }

let config t = t.cfg

let core_id t = match t.shared with Some (_, c) -> Some c | None -> None

let shared_port t = match t.shared with Some (p, _) -> Some p | None -> None

let inject_spike t ~from_cycle ~until_cycle ~l3_mult ~dram_mult =
  if from_cycle < 0 || until_cycle < from_cycle then
    invalid_arg "Hierarchy.inject_spike: bad window";
  if l3_mult < 1 || dram_mult < 1 then
    invalid_arg "Hierarchy.inject_spike: multipliers must be >= 1";
  t.spike <- Some { from_cycle; until_cycle; l3_mult; dram_mult }

let clear_spike t = t.spike <- None

let set_level_scale t lvl ~percent =
  if percent < 0 then invalid_arg "Hierarchy.set_level_scale: percent must be >= 0";
  t.level_scale <- Some (lvl, percent)

let clear_level_scale t = t.level_scale <- None

(* Apply the armed counterfactual: keep the unavoidable L1 access cost,
   scale only the beyond-L1 portion of an access served by the selected
   level. [percent = 0] answers "what if this level were as fast as
   L1?"; [percent = 50] halves its miss penalty. *)
let counterfactual t level latency =
  match t.level_scale with
  | Some (lvl, percent) when lvl = level ->
      let base = t.cfg.l1.latency in
      base + ((max 0 (latency - base)) * percent / 100)
  | _ -> latency

let spike_active t ~now =
  match t.spike with
  | Some s -> now >= s.from_cycle && now < s.until_cycle
  | None -> false

(* Below-L2 service latency with any active spike applied; in-flight
   waits are not re-scaled (the fill was priced when it started). *)
let l3_latency t ~now =
  match t.spike with
  | Some s when now >= s.from_cycle && now < s.until_cycle -> t.cfg.l3.latency * s.l3_mult
  | _ -> t.cfg.l3.latency

let dram_latency t ~now =
  match t.spike with
  | Some s when now >= s.from_cycle && now < s.until_cycle -> t.cfg.dram_latency * s.dram_mult
  | _ -> t.cfg.dram_latency

(* Classify an access without filling: serving level, total latency, and
   whether the wait came from an in-flight fill. *)
let probe t ~now addr =
  match Cache.lookup t.l1 ~now addr with
  | Cache.Hit -> (L1, t.cfg.l1.latency, false)
  | Cache.In_flight ra -> (L1, max t.cfg.l1.latency (ra - now), true)
  | Cache.Miss -> (
      match Cache.lookup t.l2 ~now addr with
      | Cache.Hit -> (L2, t.cfg.l2.latency, false)
      | Cache.In_flight ra -> (L2, max t.cfg.l2.latency (ra - now), true)
      | Cache.Miss -> (
          match Cache.lookup t.l3 ~now addr with
          | Cache.Hit -> (L3, l3_latency t ~now, false)
          | Cache.In_flight ra -> (L3, max t.cfg.l3.latency (ra - now), true)
          | Cache.Miss -> (Dram, dram_latency t ~now, false)))

(* Fill all levels above the serving one. *)
let fill t ~ready_at ~now level addr =
  (match level with
  | L1 -> ()
  | L2 -> Cache.insert t.l1 ~now ~ready_at addr
  | L3 ->
      Cache.insert t.l1 ~now ~ready_at addr;
      Cache.insert t.l2 ~now ~ready_at addr
  | Dram ->
      Cache.insert t.l1 ~now ~ready_at addr;
      Cache.insert t.l2 ~now ~ready_at addr;
      Cache.insert t.l3 ~now ~ready_at addr);
  ()

(* Port admission on the shared L3: a fresh below-L2 service consumes
   one slot of the machine-wide window budget and may be queued into a
   later window. In-flight waits were admitted when the fill started. *)
let admission t ~now level ~inflight =
  match t.shared with
  | Some (port, _) when (not inflight) && (level = L3 || level = Dram) ->
      Shared_l3.admit port ~now
  | _ -> 0

let access t ~now addr =
  let level, latency, inflight = probe t ~now addr in
  let queued = admission t ~now level ~inflight in
  let latency = counterfactual t level (latency + queued) in
  let s = t.stats in
  s.demand_accesses <- s.demand_accesses + 1;
  (match level with
  | L1 -> s.l1_hits <- s.l1_hits + 1
  | L2 -> s.l2_hits <- s.l2_hits + 1
  | L3 -> s.l3_hits <- s.l3_hits + 1
  | Dram -> s.dram_accesses <- s.dram_accesses + 1);
  if inflight then s.inflight_hits <- s.inflight_hits + 1;
  (* The demand load itself pays [latency]; by the time the core can
     issue another access, the line is usable, so fill with [now]. *)
  fill t ~ready_at:now ~now level addr;
  { level; latency; stall = max 0 (latency - t.cfg.l1.latency); queued }

let prefetch t ~now addr =
  let s = t.stats in
  s.prefetches <- s.prefetches + 1;
  if Cache.resident t.l1 ~now addr then s.useless_prefetches <- s.useless_prefetches + 1
  else begin
    let level, latency, inflight = probe t ~now addr in
    match level with
    | L1 -> ()  (* already in flight into L1; keep the earlier fill *)
    | L2 | L3 | Dram ->
        let latency = counterfactual t level (latency + admission t ~now level ~inflight) in
        fill t ~ready_at:(now + latency) ~now level addr
  end

let write t ~now:_ addr =
  match t.shared with
  | Some (port, core) -> Shared_l3.write port ~core ~addr
  | None -> ()

let resident t ~now addr =
  if Cache.resident t.l1 ~now addr then Some L1
  else if Cache.resident t.l2 ~now addr then Some L2
  else if Cache.resident t.l3 ~now addr then Some L3
  else None

let fetch t ~now pc =
  match t.icache with
  | None -> 0
  | Some ic -> (
      let addr = pc * 4 in
      match Cache.lookup ic ~now addr with
      (* icache fills always complete instantly (ready_at = now), so an
         In_flight line can only mean the caller's clock restarted:
         treat it as present *)
      | Cache.Hit | Cache.In_flight _ -> 0
      | Cache.Miss ->
          Cache.insert ic ~now ~ready_at:now addr;
          (match t.cfg.icache with Some c -> c.latency | None -> 0))

let stats t = t.stats

let reset_stats t =
  Mem_stats.reset t.stats;
  Cache.reset_stats t.l1;
  Cache.reset_stats t.l2;
  Cache.reset_stats t.l3;
  match t.icache with Some ic -> Cache.reset_stats ic | None -> ()
