(** Memory-hierarchy configuration.

    Latencies are in core cycles and are *total* load-to-use latencies
    for a hit at that level. The default ratios follow published numbers
    for recent server parts (L1 4 / L2 14 / L3 50 / DRAM 200 cycles);
    capacities are scaled down so that multi-megabyte simulated
    footprints thrash the LLC while simulations stay fast. *)

type level_cfg = { size_bytes : int; ways : int; latency : int }

type t = {
  line_bytes : int;
  l1 : level_cfg;
  l2 : level_cfg;
  l3 : level_cfg;
  dram_latency : int;
  accel_latency : int;  (** onboard-accelerator operation latency *)
  icache : level_cfg option;
      (** front-end model: when set, instruction fetch goes through an
          instruction cache (4 bytes/instruction, 64-byte lines) whose
          misses stall the front end for [latency] cycles. [None]
          (default) disables front-end modeling. *)
  prefetch_issue_cost : int;  (** cycles a non-blocking prefetch occupies the core *)
}

val default : t

(** [with_dram_latency t cycles] overrides the DRAM (event) latency —
    used by the Figure-1 spectrum experiment to sweep event duration. *)
val with_dram_latency : t -> int -> t

(** Sanity checks (power-of-two geometry, monotone cache latencies;
    [dram_latency] may sit below [l3.latency] for event-duration sweeps).
    @raise Invalid_argument when violated. *)
val validate : t -> unit
