type t = { mem : int array; mutable brk : int }

let word_bytes = 8

let line_align = 64

let create ~bytes =
  if bytes <= 0 then invalid_arg "Address_space.create: bytes must be positive";
  let words = (bytes + word_bytes - 1) / word_bytes in
  { mem = Array.make words 0; brk = 0 }

let capacity_bytes t = Array.length t.mem * word_bytes

let used_bytes t = t.brk

let alloc t ~bytes =
  if bytes <= 0 then invalid_arg "Address_space.alloc: bytes must be positive";
  let base = (t.brk + line_align - 1) / line_align * line_align in
  if base + bytes > capacity_bytes t then
    failwith
      (Printf.sprintf "Address_space.alloc: out of memory (want %d at %d, capacity %d)" bytes base
         (capacity_bytes t));
  t.brk <- base + bytes;
  base

let check t addr =
  if addr land (word_bytes - 1) <> 0 then
    invalid_arg (Printf.sprintf "Address_space: unaligned address %d" addr);
  if addr < 0 || addr >= capacity_bytes t then
    invalid_arg (Printf.sprintf "Address_space: address %d out of range" addr)

let load t addr =
  check t addr;
  t.mem.(addr lsr 3)

let store t addr v =
  check t addr;
  t.mem.(addr lsr 3) <- v

let valid_addr t addr = addr land (word_bytes - 1) = 0 && addr >= 0 && addr < capacity_bytes t

(* Unchecked accessors for the engine fast path: the caller must have
   established [valid_addr t addr] first. *)
let unsafe_load t addr = Array.unsafe_get t.mem (addr lsr 3)

let unsafe_store t addr v = Array.unsafe_set t.mem (addr lsr 3) v
