(** The contended last-level cache of an N-core machine.

    One [Shared_l3.t] holds the single L3 [Cache.t] that every core's
    private hierarchy sits on top of, and models the two ways sharing
    costs cycles:

    - {b bandwidth} — the L3/memory port admits at most [budget]
      below-L2 services per [window] cycles, machine-wide. An access
      that finds the current window full is queued into the next window
      with room, and pays the wait until that window opens as extra
      latency ([admit] returns the delay).
    - {b coherence} — a store by one core invalidates the line in every
      {e other} core's private L1/L2 ([write]); the next remote read
      re-fetches from the shared L3, so sharing written data has a
      measurable cost. The L3 copy itself survives (write-back to LLC).

    Everything is deterministic: admission depends only on the order of
    calls, which the SMP machine makes deterministic. *)

type stats = {
  mutable admitted : int;  (** below-L2 services that went through the port *)
  mutable queued : int;  (** of those, pushed into a later window *)
  mutable queue_cycles : int;  (** total extra latency cycles from queueing *)
  mutable writes : int;  (** stores seen by [write] *)
  mutable invalidations : int;  (** private L1/L2 lines killed by remote writes *)
}

type t

(** [create ?window ?budget cfg] builds the shared L3 from [cfg.l3].
    Defaults: [window = 32] cycles, [budget = 16] below-L2 services per
    window. [budget <= 0] means unlimited (no port contention).
    @raise Invalid_argument if [window <= 0]. *)
val create : ?window:int -> ?budget:int -> Memconfig.t -> t

(** The one shared L3 cache array. Per-core hierarchies alias it. *)
val cache : t -> Cache.t

val window : t -> int

val budget : t -> int

(** [attach t ~invalidate] registers a core's private-hierarchy
    invalidator ([invalidate addr] kills the line in that core's L1/L2
    and returns how many lines it removed) and returns the core id used
    by [write]. *)
val attach : t -> invalidate:(int -> int) -> int

(** Number of attached cores. *)
val cores : t -> int

(** [admit t ~now] charges one below-L2 service starting at [now]
    against the port and returns the extra delay cycles (0 when the
    current window has room). *)
val admit : t -> now:int -> int

(** [write t ~core ~addr] records a store by [core] and invalidates the
    line in every other attached core's private hierarchy. *)
val write : t -> core:int -> addr:int -> unit

(** {2 Windowed per-core ports (barrier-parallel SMP)}

    In barrier mode every core owns a [wport]: a private replica of the
    shared L3 plus an op log, so OCaml [Domain]s stepping different
    cores never touch shared mutable state inside a window. At each
    barrier {!merge_wports} replays the logs onto the canonical L3 in
    core-index order and re-syncs every replica by blit — merged state
    depends only on core order, never on the domain count, which is
    what makes barrier mode bit-identical for 1 vs N domains. Port
    bandwidth becomes a static per-core share
    [max 1 (budget / cores)], accounted per core (core clocks are
    monotone, so no shared window counters are needed). *)

type wport

(** [open_wport t ~core] builds the windowed port for [core] (an id
    returned by {!attach}). The per-core budget share is read at
    admission time, so ports may be opened while cores are still being
    attached. *)
val open_wport : t -> core:int -> wport

(** The core's private L3 replica (alias it as the hierarchy's L3). *)
val wport_cache : wport -> Cache.t

(** Per-core admission against the static budget share; returns the
    queueing delay like {!admit}. *)
val wport_admit : wport -> now:int -> int

(** Record an L3 lookup/fill/store in the port's log for barrier
    replay. *)
val wport_log_lookup : wport -> now:int -> addr:int -> unit

val wport_log_insert : wport -> now:int -> ready_at:int -> addr:int -> unit

val wport_write : wport -> addr:int -> unit

(** [merge_wports t ports] replays every port's log onto the canonical
    L3 in array order (which must be core-index order), applies logged
    stores' cross-core invalidations, folds the ports' admission stats
    into [stats t], clears the logs, and re-syncs every replica from
    the merged canonical state. Sequential-phase only. *)
val merge_wports : t -> wport array -> unit

val stats : t -> stats

val reset_stats : t -> unit
