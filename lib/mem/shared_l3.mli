(** The contended last-level cache of an N-core machine.

    One [Shared_l3.t] holds the single L3 [Cache.t] that every core's
    private hierarchy sits on top of, and models the two ways sharing
    costs cycles:

    - {b bandwidth} — the L3/memory port admits at most [budget]
      below-L2 services per [window] cycles, machine-wide. An access
      that finds the current window full is queued into the next window
      with room, and pays the wait until that window opens as extra
      latency ([admit] returns the delay).
    - {b coherence} — a store by one core invalidates the line in every
      {e other} core's private L1/L2 ([write]); the next remote read
      re-fetches from the shared L3, so sharing written data has a
      measurable cost. The L3 copy itself survives (write-back to LLC).

    Everything is deterministic: admission depends only on the order of
    calls, which the SMP machine makes deterministic. *)

type stats = {
  mutable admitted : int;  (** below-L2 services that went through the port *)
  mutable queued : int;  (** of those, pushed into a later window *)
  mutable queue_cycles : int;  (** total extra latency cycles from queueing *)
  mutable writes : int;  (** stores seen by [write] *)
  mutable invalidations : int;  (** private L1/L2 lines killed by remote writes *)
}

type t

(** [create ?window ?budget cfg] builds the shared L3 from [cfg.l3].
    Defaults: [window = 32] cycles, [budget = 16] below-L2 services per
    window. [budget <= 0] means unlimited (no port contention).
    @raise Invalid_argument if [window <= 0]. *)
val create : ?window:int -> ?budget:int -> Memconfig.t -> t

(** The one shared L3 cache array. Per-core hierarchies alias it. *)
val cache : t -> Cache.t

val window : t -> int

val budget : t -> int

(** [attach t ~invalidate] registers a core's private-hierarchy
    invalidator ([invalidate addr] kills the line in that core's L1/L2
    and returns how many lines it removed) and returns the core id used
    by [write]. *)
val attach : t -> invalidate:(int -> int) -> int

(** Number of attached cores. *)
val cores : t -> int

(** [admit t ~now] charges one below-L2 service starting at [now]
    against the port and returns the extra delay cycles (0 when the
    current window has room). *)
val admit : t -> now:int -> int

(** [write t ~core ~addr] records a store by [core] and invalidates the
    line in every other attached core's private hierarchy. *)
val write : t -> core:int -> addr:int -> unit

val stats : t -> stats

val reset_stats : t -> unit
