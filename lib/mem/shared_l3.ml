open Stallhide_util

type stats = {
  mutable admitted : int;
  mutable queued : int;
  mutable queue_cycles : int;
  mutable writes : int;
  mutable invalidations : int;
}

type t = {
  l3 : Cache.t;
  cfg : Memconfig.t;
  win : int;
  bud : int;  (* <= 0 = unlimited *)
  used : (int, int) Hashtbl.t;  (* window index -> services admitted *)
  mutable invalidators : (int -> int) array;
  stats : stats;
}

let create ?(window = 32) ?(budget = 16) (cfg : Memconfig.t) =
  if window <= 0 then invalid_arg "Shared_l3.create: window must be positive";
  Memconfig.validate cfg;
  {
    l3 = Cache.create ~name:"L3" ~line_bytes:cfg.line_bytes cfg.l3;
    cfg;
    win = window;
    bud = budget;
    used = Hashtbl.create 256;
    invalidators = [||];
    stats = { admitted = 0; queued = 0; queue_cycles = 0; writes = 0; invalidations = 0 };
  }

let cache t = t.l3

let window t = t.win

let budget t = t.bud

let attach t ~invalidate =
  let core = Array.length t.invalidators in
  t.invalidators <- Array.append t.invalidators [| invalidate |];
  core

let cores t = Array.length t.invalidators

(* Top-level recursion (no closure capture — [admit] sits on the SMP
   fast path): first window at or after [w0] with budget room. *)
let rec place used bud w =
  let u = match Hashtbl.find_opt used w with Some u -> u | None -> 0 in
  if u < bud then begin
    Hashtbl.replace used w (u + 1);
    w
  end
  else place used bud (w + 1)

let admit t ~now =
  t.stats.admitted <- t.stats.admitted + 1;
  if t.bud <= 0 then 0
  else begin
    let w0 = now / t.win in
    let w = place t.used t.bud w0 in
    if w = w0 then 0
    else begin
      let delay = (w * t.win) - now in
      t.stats.queued <- t.stats.queued + 1;
      t.stats.queue_cycles <- t.stats.queue_cycles + delay;
      delay
    end
  end

let write t ~core ~addr =
  t.stats.writes <- t.stats.writes + 1;
  Array.iteri
    (fun i inv ->
      if i <> core then t.stats.invalidations <- t.stats.invalidations + inv addr)
    t.invalidators

(* Windowed per-core port: the barrier-parallel SMP mode gives every
   core a private replica of the shared L3 plus an op log, so domains
   never touch shared mutable state mid-window. At each barrier the
   logs are replayed onto the canonical L3 in core-index order and the
   replicas re-synced by blit — the merged state depends only on core
   order, never on how many domains stepped the window, which is what
   makes Barrier mode bit-identical for 1 vs N domains. Port bandwidth
   is a static per-core share of the machine budget, accounted in a
   per-core table (per-core clocks are monotone, so no shared window
   counters are needed). *)

let op_lookup = 0

let op_insert = 1

let op_write = 2

type wport = {
  owner : t;
  wcore : int;
  replica : Cache.t;
  log : int Vec.t;
  wused : (int, int) Hashtbl.t;
  mutable l_admitted : int;
  mutable l_queued : int;
  mutable l_queue_cycles : int;
}

let open_wport t ~core =
  {
    owner = t;
    wcore = core;
    replica = Cache.create ~name:"L3" ~line_bytes:t.cfg.line_bytes t.cfg.l3;
    log = Vec.create ();
    wused = Hashtbl.create 256;
    l_admitted = 0;
    l_queued = 0;
    l_queue_cycles = 0;
  }

let wport_cache p = p.replica

(* Static per-core slice of the machine budget, read at admission time
   so ports opened during incremental attach still see the final core
   count. *)
let wport_share p =
  let t = p.owner in
  if t.bud <= 0 then 0 else max 1 (t.bud / max 1 (cores t))

let wport_admit p ~now =
  p.l_admitted <- p.l_admitted + 1;
  let share = wport_share p in
  if share <= 0 then 0
  else begin
    let w0 = now / p.owner.win in
    let w = place p.wused share w0 in
    if w = w0 then 0
    else begin
      let delay = (w * p.owner.win) - now in
      p.l_queued <- p.l_queued + 1;
      p.l_queue_cycles <- p.l_queue_cycles + delay;
      delay
    end
  end

let wport_log_lookup p ~now ~addr =
  Vec.push p.log op_lookup;
  Vec.push p.log now;
  Vec.push p.log addr

let wport_log_insert p ~now ~ready_at ~addr =
  Vec.push p.log op_insert;
  Vec.push p.log now;
  Vec.push p.log ready_at;
  Vec.push p.log addr

let wport_write p ~addr =
  Vec.push p.log op_write;
  Vec.push p.log addr

let merge_wports t ports =
  (* Sequential phase: replay each core's log onto the canonical L3 in
     core-index order, then re-sync every replica from the merged
     canonical state. An all-empty barrier (no L3 traffic in the
     window) leaves canonical and replicas already consistent, so the
     per-core blits are skipped. *)
  let dirty = Array.exists (fun p -> not (Vec.is_empty p.log)) ports in
  Array.iter
    (fun p ->
      let n = Vec.length p.log in
      let i = ref 0 in
      while !i < n do
        let op = Vec.get p.log !i in
        if op = op_lookup then begin
          ignore (Cache.lookup_code t.l3 ~now:(Vec.get p.log (!i + 1)) (Vec.get p.log (!i + 2)));
          i := !i + 3
        end
        else if op = op_insert then begin
          Cache.insert t.l3
            ~now:(Vec.get p.log (!i + 1))
            ~ready_at:(Vec.get p.log (!i + 2))
            (Vec.get p.log (!i + 3));
          i := !i + 4
        end
        else begin
          write t ~core:p.wcore ~addr:(Vec.get p.log (!i + 1));
          i := !i + 2
        end
      done;
      Vec.clear p.log;
      t.stats.admitted <- t.stats.admitted + p.l_admitted;
      t.stats.queued <- t.stats.queued + p.l_queued;
      t.stats.queue_cycles <- t.stats.queue_cycles + p.l_queue_cycles;
      p.l_admitted <- 0;
      p.l_queued <- 0;
      p.l_queue_cycles <- 0)
    ports;
  if dirty then Array.iter (fun p -> Cache.copy_state ~src:t.l3 ~dst:p.replica) ports

let stats t = t.stats

let reset_stats t =
  t.stats.admitted <- 0;
  t.stats.queued <- 0;
  t.stats.queue_cycles <- 0;
  t.stats.writes <- 0;
  t.stats.invalidations <- 0
