type stats = {
  mutable admitted : int;
  mutable queued : int;
  mutable queue_cycles : int;
  mutable writes : int;
  mutable invalidations : int;
}

type t = {
  l3 : Cache.t;
  win : int;
  bud : int;  (* <= 0 = unlimited *)
  used : (int, int) Hashtbl.t;  (* window index -> services admitted *)
  mutable invalidators : (int -> int) array;
  stats : stats;
}

let create ?(window = 32) ?(budget = 16) (cfg : Memconfig.t) =
  if window <= 0 then invalid_arg "Shared_l3.create: window must be positive";
  Memconfig.validate cfg;
  {
    l3 = Cache.create ~name:"L3" ~line_bytes:cfg.line_bytes cfg.l3;
    win = window;
    bud = budget;
    used = Hashtbl.create 256;
    invalidators = [||];
    stats = { admitted = 0; queued = 0; queue_cycles = 0; writes = 0; invalidations = 0 };
  }

let cache t = t.l3

let window t = t.win

let budget t = t.bud

let attach t ~invalidate =
  let core = Array.length t.invalidators in
  t.invalidators <- Array.append t.invalidators [| invalidate |];
  core

let cores t = Array.length t.invalidators

let admit t ~now =
  t.stats.admitted <- t.stats.admitted + 1;
  if t.bud <= 0 then 0
  else begin
    let w0 = now / t.win in
    let rec place w =
      let u = try Hashtbl.find t.used w with Not_found -> 0 in
      if u < t.bud then begin
        Hashtbl.replace t.used w (u + 1);
        w
      end
      else place (w + 1)
    in
    let w = place w0 in
    if w = w0 then 0
    else begin
      let delay = (w * t.win) - now in
      t.stats.queued <- t.stats.queued + 1;
      t.stats.queue_cycles <- t.stats.queue_cycles + delay;
      delay
    end
  end

let write t ~core ~addr =
  t.stats.writes <- t.stats.writes + 1;
  Array.iteri
    (fun i inv ->
      if i <> core then t.stats.invalidations <- t.stats.invalidations + inv addr)
    t.invalidators

let stats t = t.stats

let reset_stats t =
  t.stats.admitted <- 0;
  t.stats.queued <- 0;
  t.stats.queue_cycles <- 0;
  t.stats.writes <- 0;
  t.stats.invalidations <- 0
