type t = {
  cname : string;
  line_shift : int;
  sets : int;
  ways : int;
  tags : int array;  (* sets*ways; -1 = invalid *)
  ready : int array;
  stamp : int array;  (* LRU timestamps *)
  mutable tick : int;
  mutable hit_count : int;
  mutable miss_count : int;
}

type lookup = Hit | In_flight of int | Miss

let log2 n =
  let rec loop n acc = if n <= 1 then acc else loop (n lsr 1) (acc + 1) in
  loop n 0

let create ~name ~line_bytes (cfg : Memconfig.level_cfg) =
  let lines = cfg.size_bytes / line_bytes in
  let sets = lines / cfg.ways in
  if sets <= 0 then invalid_arg "Cache.create: zero sets";
  {
    cname = name;
    line_shift = log2 line_bytes;
    sets;
    ways = cfg.ways;
    tags = Array.make lines (-1);
    ready = Array.make lines 0;
    stamp = Array.make lines 0;
    tick = 0;
    hit_count = 0;
    miss_count = 0;
  }

let name t = t.cname

let lines t = t.sets * t.ways

let line_of t addr = addr lsr t.line_shift

(* Returns the way slot index of the line in its set, or -1. *)
let find t line =
  let set = line land (t.sets - 1) in
  let base = set * t.ways in
  let rec loop w =
    if w = t.ways then -1
    else if t.tags.(base + w) = line then base + w
    else loop (w + 1)
  in
  loop 0

let touch t slot =
  t.tick <- t.tick + 1;
  t.stamp.(slot) <- t.tick

let lookup t ~now addr =
  let line = line_of t addr in
  match find t line with
  | -1 ->
      t.miss_count <- t.miss_count + 1;
      Miss
  | slot ->
      t.hit_count <- t.hit_count + 1;
      touch t slot;
      if t.ready.(slot) <= now then Hit else In_flight t.ready.(slot)

let insert t ~now ~ready_at addr =
  ignore now;
  let line = line_of t addr in
  match find t line with
  | slot when slot >= 0 ->
      (* Refill of a present line: keep the earlier availability. *)
      if ready_at < t.ready.(slot) then t.ready.(slot) <- ready_at;
      touch t slot
  | _ ->
      let set = line land (t.sets - 1) in
      let base = set * t.ways in
      let victim = ref base in
      for w = 1 to t.ways - 1 do
        let s = base + w in
        if t.tags.(s) = -1 && t.tags.(!victim) <> -1 then victim := s
        else if t.tags.(s) <> -1 && t.tags.(!victim) <> -1 && t.stamp.(s) < t.stamp.(!victim) then
          victim := s
      done;
      t.tags.(!victim) <- line;
      t.ready.(!victim) <- ready_at;
      touch t !victim

let resident t ~now addr =
  let line = line_of t addr in
  match find t line with -1 -> false | slot -> t.ready.(slot) <= now

let invalidate t addr =
  let line = line_of t addr in
  match find t line with
  | -1 -> false
  | slot ->
      t.tags.(slot) <- -1;
      t.ready.(slot) <- 0;
      t.stamp.(slot) <- 0;
      true

let hits t = t.hit_count

let misses t = t.miss_count

let reset_stats t =
  t.hit_count <- 0;
  t.miss_count <- 0
