type arr = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  cname : string;
  line_shift : int;
  sets : int;
  ways : int;
  tags : arr;  (* sets*ways; -1 = invalid *)
  ready : arr;
  stamp : arr;  (* LRU timestamps *)
  mutable tick : int;
  mutable hit_count : int;
  mutable miss_count : int;
}

type lookup = Hit | In_flight of int | Miss

let log2 n =
  let rec loop n acc = if n <= 1 then acc else loop (n lsr 1) (acc + 1) in
  loop n 0

let make_arr len v =
  let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout len in
  Bigarray.Array1.fill a v;
  a

let create ~name ~line_bytes (cfg : Memconfig.level_cfg) =
  let lines = cfg.size_bytes / line_bytes in
  let sets = lines / cfg.ways in
  if sets <= 0 then invalid_arg "Cache.create: zero sets";
  {
    cname = name;
    line_shift = log2 line_bytes;
    sets;
    ways = cfg.ways;
    tags = make_arr lines (-1);
    ready = make_arr lines 0;
    stamp = make_arr lines 0;
    tick = 0;
    hit_count = 0;
    miss_count = 0;
  }

let name t = t.cname

let lines t = t.sets * t.ways

let line_of t addr = addr lsr t.line_shift

(* Top-level recursion with explicit arguments: a local [let rec] here
   would capture free variables and allocate one closure per call —
   the zero-allocation fast path runs these on every access. *)
let rec find_from (tags : arr) line s stop =
  if s = stop then -1
  else if Bigarray.Array1.unsafe_get tags s = line then s
  else find_from tags line (s + 1) stop

(* Returns the way slot index of the line in its set, or -1. *)
let find t line =
  let base = (line land (t.sets - 1)) * t.ways in
  find_from t.tags line base (base + t.ways)

let touch t slot =
  t.tick <- t.tick + 1;
  Bigarray.Array1.unsafe_set t.stamp slot t.tick

(* LRU victim scan, tail-recursive at top level (alloc-free): empty way
   first, else the oldest stamp. *)
let rec pick_victim (tags : arr) (stamp : arr) s stop victim =
  if s = stop then victim
  else
    let ts = Bigarray.Array1.unsafe_get tags s
    and tv = Bigarray.Array1.unsafe_get tags victim in
    let victim =
      if ts = -1 && tv <> -1 then s
      else if
        ts <> -1 && tv <> -1
        && Bigarray.Array1.unsafe_get stamp s < Bigarray.Array1.unsafe_get stamp victim
      then s
      else victim
    in
    pick_victim tags stamp (s + 1) stop victim

(* Packed classification: [-1] miss, [0] ready hit, [ready_at > 0] an
   in-flight fill completing at that cycle. In-flight implies
   [ready_at > now >= 0], so the codes cannot collide. Refreshes LRU
   and hit/miss counters exactly like [lookup]. *)
let lookup_code t ~now addr =
  let line = line_of t addr in
  let slot = find t line in
  if slot < 0 then begin
    t.miss_count <- t.miss_count + 1;
    -1
  end
  else begin
    t.hit_count <- t.hit_count + 1;
    touch t slot;
    let ra = Bigarray.Array1.unsafe_get t.ready slot in
    if ra <= now then 0 else ra
  end

let lookup t ~now addr =
  let c = lookup_code t ~now addr in
  if c < 0 then Miss else if c = 0 then Hit else In_flight c

let insert t ~now ~ready_at addr =
  ignore now;
  let line = line_of t addr in
  let slot = find t line in
  if slot >= 0 then begin
    (* Refill of a present line: keep the earlier availability. *)
    if ready_at < Bigarray.Array1.unsafe_get t.ready slot then
      Bigarray.Array1.unsafe_set t.ready slot ready_at;
    touch t slot
  end
  else begin
    let base = (line land (t.sets - 1)) * t.ways in
    let victim = pick_victim t.tags t.stamp (base + 1) (base + t.ways) base in
    Bigarray.Array1.unsafe_set t.tags victim line;
    Bigarray.Array1.unsafe_set t.ready victim ready_at;
    touch t victim
  end

let resident t ~now addr =
  let line = line_of t addr in
  let slot = find t line in
  slot >= 0 && Bigarray.Array1.unsafe_get t.ready slot <= now

let invalidate t addr =
  let line = line_of t addr in
  let slot = find t line in
  if slot < 0 then false
  else begin
    t.tags.{slot} <- -1;
    t.ready.{slot} <- 0;
    t.stamp.{slot} <- 0;
    true
  end

let copy_state ~src ~dst =
  if src.sets <> dst.sets || src.ways <> dst.ways || src.line_shift <> dst.line_shift then
    invalid_arg "Cache.copy_state: geometry mismatch";
  Bigarray.Array1.blit src.tags dst.tags;
  Bigarray.Array1.blit src.ready dst.ready;
  Bigarray.Array1.blit src.stamp dst.stamp;
  dst.tick <- src.tick

let hits t = t.hit_count

let misses t = t.miss_count

let reset_stats t =
  t.hit_count <- 0;
  t.miss_count <- 0
