(** Inclusive three-level cache hierarchy over DRAM.

    [access] performs a demand load: it returns the level that served
    the request, the total load-to-use latency, and the stall cycles
    (latency beyond an L1 hit), and fills all levels above the serving
    one. [prefetch] starts the same fill without blocking: the lines are
    installed with a future [ready_at], so a later demand access pays
    only the remaining cycles. *)

type level = L1 | L2 | L3 | Dram

val level_name : level -> string

(** Dense level codes used by the allocation-free fast path:
    [0 = L1], [1 = L2], [2 = L3], [3 = Dram]. *)
val level_code : level -> int

val level_of_code : int -> level

type result = {
  level : level;  (** level that served the access *)
  latency : int;  (** total load-to-use cycles *)
  stall : int;  (** cycles beyond an L1 hit, i.e. [latency - l1.latency] *)
  queued : int;
      (** cycles spent queued at the shared-L3 port's bandwidth budget
          (contention, not service); 0 on single-core hierarchies *)
}

(** A transient latency fault: between [from_cycle] (inclusive) and
    [until_cycle] (exclusive), accesses served by L3 pay
    [l3_mult × l3.latency] and DRAM accesses pay
    [dram_mult × dram_latency]. Models row-buffer storms, co-tenant
    bandwidth contention, or thermal throttling — the inputs a
    production stall-hider must survive, injected deterministically. *)
type spike = { from_cycle : int; until_cycle : int; l3_mult : int; dram_mult : int }

type t

val create : Memconfig.t -> t

(** [create_core cfg ~shared] builds one core of an SMP machine:
    private L1/L2 (and icache) from [cfg], but the L3 level aliases the
    machine-wide [shared] cache. Below-L2 services go through the
    shared port's bandwidth budget ([Shared_l3.admit]), and the core is
    registered with the port so remote writes invalidate its private
    lines. Per-core [Mem_stats] stay private. *)
val create_core : Memconfig.t -> shared:Shared_l3.t -> t

(** Like {!create_core}, but the L3 level aliases this core's private
    {e replica} of the shared cache behind a {!Shared_l3.wport}: L3
    lookups/fills/stores are logged for barrier replay and admission
    draws on the core's static budget share. Used by the
    barrier-parallel SMP mode so OCaml [Domain]s never share mutable
    cache state inside a window. *)
val create_core_windowed : Memconfig.t -> shared:Shared_l3.t -> t

(** The windowed port of a {!create_core_windowed} hierarchy. *)
val wport : t -> Shared_l3.wport option

val config : t -> Memconfig.t

(** This hierarchy's core id on its shared port; [None] for the
    single-core hierarchies built by [create]. *)
val core_id : t -> int option

val shared_port : t -> Shared_l3.t option

(** Arm a latency spike. In-flight fills keep the price they were
    issued at; only new below-L2 service inside the window is scaled.
    @raise Invalid_argument on an empty window or multipliers < 1. *)
val inject_spike :
  t -> from_cycle:int -> until_cycle:int -> l3_mult:int -> dram_mult:int -> unit

val clear_spike : t -> unit

(** Arm a causal counterfactual: scale the beyond-L1 portion of every
    access *served by* [level] to [percent]% of its real cost (the L1
    access cost is always still paid). [percent = 0] literalizes a
    Coz-style virtual speedup — "what if L3 were as fast as L1?" —
    which is legal here precisely because we own the simulator.
    Applies to demand loads and to prefetch fill pricing alike, so the
    counterfactual world stays self-consistent; control flow (yield
    residency checks, site selection) is untouched. At most one level
    is scaled at a time; [Memconfig.validate]'s latency-monotonicity
    does not constrain this runtime knob.
    @raise Invalid_argument if [percent < 0]. *)
val set_level_scale : t -> level -> percent:int -> unit

val clear_level_scale : t -> unit

val spike_active : t -> now:int -> bool

val access : t -> now:int -> int -> result

(** Allocation-free [access] for the fast step loop: performs the same
    demand load (identical fills, admission, statistics — [access] is
    implemented on top of it) but returns only the total latency,
    leaving the serving level and queueing delay readable via
    {!last_level} / {!last_queued} until the next access. *)
val access_latency : t -> now:int -> int -> int

(** Level code ({!level_code}) of the last {!access_latency} /
    [access]. *)
val last_level : t -> int

(** Shared-L3 queueing delay of the last {!access_latency} /
    [access]. *)
val last_queued : t -> int

val prefetch : t -> now:int -> int -> unit

(** [write t ~now addr] records a store. On a shared-L3 core this
    invalidates the line in every other core's private L1/L2 (coherence
    cost lands on the next remote reader); on a [create] hierarchy it
    is a no-op. The store itself stays single-cycle — stores retire
    through a write buffer and never stall the modeled core. *)
val write : t -> now:int -> int -> unit

(** Deepest-cached test for the §4.1 residency oracle: [Some level] if
    the line is present *and ready* somewhere on chip. Does not perturb
    LRU or statistics. *)
val resident : t -> now:int -> int -> level option

(** Allocation-free {!resident}: deepest ready level's code, or [-1]
    when the line is nowhere on chip. *)
val resident_code : t -> now:int -> int -> int

val stats : t -> Mem_stats.t

(** Clears statistics but not cache contents (used to exclude warmup). *)
val reset_stats : t -> unit

(** [fetch t ~now pc] models instruction fetch of the instruction at
    index [pc] (4 bytes each): returns the front-end stall in cycles —
    0 on an icache hit or when no icache is configured. *)
val fetch : t -> now:int -> int -> int
