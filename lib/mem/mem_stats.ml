type t = {
  mutable demand_accesses : int;
  mutable l1_hits : int;
  mutable l2_hits : int;
  mutable l3_hits : int;
  mutable dram_accesses : int;
  mutable inflight_hits : int;
  mutable prefetches : int;
  mutable useless_prefetches : int;
}

let create () =
  {
    demand_accesses = 0;
    l1_hits = 0;
    l2_hits = 0;
    l3_hits = 0;
    dram_accesses = 0;
    inflight_hits = 0;
    prefetches = 0;
    useless_prefetches = 0;
  }

let reset t =
  t.demand_accesses <- 0;
  t.l1_hits <- 0;
  t.l2_hits <- 0;
  t.l3_hits <- 0;
  t.dram_accesses <- 0;
  t.inflight_hits <- 0;
  t.prefetches <- 0;
  t.useless_prefetches <- 0

let pp fmt t =
  Format.fprintf fmt
    "demand=%d l1=%d l2=%d l3=%d dram=%d inflight=%d prefetch=%d useless_prefetch=%d"
    t.demand_accesses t.l1_hits t.l2_hits t.l3_hits t.dram_accesses t.inflight_hits t.prefetches
    t.useless_prefetches
