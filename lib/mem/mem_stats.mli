(** Demand/prefetch counters for the hierarchy. *)

type t = {
  mutable demand_accesses : int;
  mutable l1_hits : int;
  mutable l2_hits : int;
  mutable l3_hits : int;
  mutable dram_accesses : int;
  mutable inflight_hits : int;  (** demand hits on a line still being filled *)
  mutable prefetches : int;
  mutable useless_prefetches : int;  (** prefetch of an already-ready L1 line *)
}

val create : unit -> t

val reset : t -> unit

val pp : Format.formatter -> t -> unit
