(** The simulated physical memory image.

    Word-addressed storage behind byte addresses: words are 8 bytes and
    all loads/stores must be word-aligned. Workload generators allocate
    regions with {!alloc} (line-aligned, bump allocation) and fill them
    with data; pointers are stored byte addresses, so pointer-chasing
    programs really dereference this image. *)

type t

val word_bytes : int

(** [create ~bytes] makes a zero-filled space of capacity [bytes]
    (rounded up to a whole word). *)
val create : bytes:int -> t

val capacity_bytes : t -> int

(** Bytes currently allocated. *)
val used_bytes : t -> int

(** [alloc t ~bytes] reserves a fresh 64-byte-aligned region and
    returns its base address.
    @raise Failure when the space is exhausted. *)
val alloc : t -> bytes:int -> int

(** @raise Invalid_argument on unaligned or out-of-range addresses. *)
val load : t -> int -> int

val store : t -> int -> int -> unit

(** Whether [addr] is word-aligned and within the allocated capacity. *)
val valid_addr : t -> int -> bool

(** Unchecked load/store for the engine fast path. The caller must
    have established {!valid_addr} for the address first; behaviour is
    undefined otherwise. *)
val unsafe_load : t -> int -> int

val unsafe_store : t -> int -> int -> unit
