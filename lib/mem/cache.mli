(** One set-associative cache level with LRU replacement.

    Lines carry a [ready_at] cycle so that in-flight fills started by a
    prefetch are modeled: a demand access that arrives before the fill
    completes waits only the remaining cycles (partial hiding). *)

type t

type lookup =
  | Hit  (** present and ready *)
  | In_flight of int  (** present, fill completes at the given cycle *)
  | Miss

val create : name:string -> line_bytes:int -> Memconfig.level_cfg -> t

val name : t -> string

(** Number of lines. *)
val lines : t -> int

(** [lookup t ~now addr] classifies the access and, on [Hit]/[In_flight],
    refreshes LRU state. *)
val lookup : t -> now:int -> int -> lookup

(** Allocation-free [lookup] for the fast path: [-1] = miss, [0] = hit,
    [ready_at > 0] = in-flight fill completing at that cycle (in-flight
    implies [ready_at > now >= 0], so the codes cannot collide). Updates
    LRU state and hit/miss counters identically to [lookup]. *)
val lookup_code : t -> now:int -> int -> int

(** [insert t ~now ~ready_at addr] fills the line (evicting LRU). *)
val insert : t -> now:int -> ready_at:int -> int -> unit

(** Presence test without touching LRU state (used by the §4.1
    residency oracle). *)
val resident : t -> now:int -> int -> bool

(** [invalidate t addr] drops the line containing [addr] if present
    (cross-core coherence: a remote write kills local copies). Returns
    [true] if a line was actually removed. Does not count as a hit or a
    miss. *)
val invalidate : t -> int -> bool

(** [copy_state ~src ~dst] blits tags/ready/LRU state (not statistics)
    from [src] into [dst]. The barrier-parallel SMP mode uses this to
    re-sync per-core shared-L3 replicas at window boundaries.
    @raise Invalid_argument on geometry mismatch. *)
val copy_state : src:t -> dst:t -> unit

val hits : t -> int

val misses : t -> int

val reset_stats : t -> unit
